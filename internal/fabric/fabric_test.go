// Chaos tests for the distributed sweep fabric: byte-identity of the merged
// document against the single-process render path under clean conditions,
// under a deterministic fault schedule (drops, delays, 5xx, corruption,
// truncation), with a replica dying mid-sweep, and with the whole fleet
// gone. Run under -race in CI. Every test also asserts goroutine
// quiescence: the coordinator may not leak attempt, probe or handler
// goroutines no matter how the sweep ended.
package fabric_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/unilocal/unilocal/internal/fabric"
	"github.com/unilocal/unilocal/internal/fabric/faultinject"
	"github.com/unilocal/unilocal/internal/scenario"
	"github.com/unilocal/unilocal/internal/serve"
	"github.com/unilocal/unilocal/internal/sweep"
)

func testSpecs() []*scenario.Spec {
	base := &scenario.AlgoSpec{Name: "nonuniform-mis-delta"}
	return []*scenario.Spec{
		{
			Name:      "fabric-mis",
			Graph:     scenario.GraphSpec{Family: "cycle", N: 96},
			IDs:       scenario.IDSpec{Regime: "dense", Seed: 5},
			Algorithm: scenario.AlgoSpec{Name: "uniform-mis-delta"},
			Baseline:  base,
			Seeds:     []int64{1, 2, 3},
			Repeat:    2,
		},
		{
			Name:      "fabric-luby",
			Graph:     scenario.GraphSpec{Family: "gnp", N: 64, P: 0.1},
			Algorithm: scenario.AlgoSpec{Name: "luby-mis"},
			Seeds:     []int64{4, 5},
		},
	}
}

// wantDocument renders the specs the single-process way — the byte sequence
// every distributed sweep must reproduce exactly.
func wantDocument(t *testing.T, specs []*scenario.Spec, seed int64) []byte {
	t.Helper()
	batch, err := scenario.Expand(specs, scenario.ExpandOptions{SeedOffset: seed - 1})
	if err != nil {
		t.Fatal(err)
	}
	results, _ := sweep.Run(batch.Jobs, sweep.Options{})
	var buf bytes.Buffer
	if err := scenario.Render(&buf, batch, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func startReplicas(t *testing.T, n int, cfg serve.Config) ([]*httptest.Server, []string) {
	t.Helper()
	servers := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range servers {
		servers[i] = httptest.NewServer(serve.New(cfg))
		urls[i] = servers[i].URL
	}
	return servers, urls
}

func closeAll(servers []*httptest.Server) {
	for _, ts := range servers {
		if ts != nil {
			ts.Close()
		}
	}
}

// checkGoroutines asserts the goroutine count settles back to (about) the
// pre-test level once every server is closed — the no-leak half of the
// chaos contract.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 { // tolerate runtime helpers
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: %d before, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSweepMatchesSingleProcess(t *testing.T) {
	specs := testSpecs()
	want := wantDocument(t, specs, 1)
	before := runtime.NumGoroutine()

	servers, urls := startReplicas(t, 3, serve.Config{Parallel: 2})
	c, err := fabric.New(fabric.Config{Endpoints: urls})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := c.Sweep(context.Background(), specs)
	closeAll(servers)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed document diverges:\n got: %s\nwant: %s", got, want)
	}
	// 3 shards of the 12-job spec plus 2 of the 2-job spec (the shard count
	// clamps to the grid so no empty shard ships).
	if stats.Tasks != 5 || stats.Attempts != 5 || stats.Retries != 0 || stats.Fallbacks != 0 {
		t.Fatalf("clean sweep stats off: %+v", stats)
	}
	checkGoroutines(t, before)
}

// TestSweepDeterministicUnderFaults is the headline chaos test: a seeded
// fault schedule injecting drops, delays, 503s, corrupted documents and
// truncated documents, and the merged output still byte-identical, with the
// retry volume bounded by the budget.
func TestSweepDeterministicUnderFaults(t *testing.T) {
	specs := testSpecs()
	want := wantDocument(t, specs, 1)
	before := runtime.NumGoroutine()

	servers, urls := startReplicas(t, 3, serve.Config{Parallel: 2})
	isRun := func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/run") }
	ft := &faultinject.Transport{
		Seed: 7,
		Rules: []faultinject.Rule{
			{Match: isRun, Prob: 0.15, Drop: true},
			{Match: isRun, Every: 6, Delay: 20 * time.Millisecond},
			{Match: isRun, Prob: 0.10, Status: http.StatusServiceUnavailable},
			{Match: isRun, Every: 7, Corrupt: true},
			{Match: isRun, Every: 9, Truncate: true},
		},
	}
	c, err := fabric.New(fabric.Config{
		Endpoints:        urls,
		Client:           &http.Client{Transport: ft},
		BaseBackoff:      2 * time.Millisecond,
		MaxBackoff:       50 * time.Millisecond,
		FailureThreshold: 4,
		ProbeInterval:    10 * time.Millisecond,
		Fallback:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := c.Sweep(context.Background(), specs)
	closeAll(servers)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("document diverges under faults:\n got: %s\nwant: %s", got, want)
	}
	fs := ft.Stats()
	if fs.Drops+fs.Statuses+fs.Corrupts+fs.Truncates == 0 {
		t.Fatalf("fault schedule never fired: %+v", fs)
	}
	if stats.Retries > 4*stats.Tasks {
		t.Fatalf("retry storm: %+v over budget %d", stats, 4*stats.Tasks)
	}
	t.Logf("faults: %+v; supervision: %+v", fs, stats)
	checkGoroutines(t, before)
}

// TestSweepReplicaDeathMidSweep kills one of three replicas after it has
// answered twice. Its remaining shards must be reassigned, the merged
// document must not change by a byte, and nothing may leak.
func TestSweepReplicaDeathMidSweep(t *testing.T) {
	specs := testSpecs()
	want := wantDocument(t, specs, 1)
	before := runtime.NumGoroutine()

	servers, urls := startReplicas(t, 3, serve.Config{Parallel: 1})
	var answered atomic.Int64
	var killed atomic.Bool
	victim := servers[0]
	victimHost := strings.TrimPrefix(victim.URL, "http://")
	kill := &countingTransport{onResponse: func(r *http.Request) {
		if r.Host == victimHost && answered.Add(1) == 2 && !killed.Swap(true) {
			victim.CloseClientConnections()
			victim.Close()
		}
	}}
	c, err := fabric.New(fabric.Config{
		Endpoints:        urls,
		Client:           &http.Client{Transport: kill},
		BaseBackoff:      2 * time.Millisecond,
		FailureThreshold: 2,
		ProbeInterval:    10 * time.Millisecond,
		Fallback:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := c.Sweep(context.Background(), specs)
	servers[0] = nil // already closed
	closeAll(servers)
	if err != nil {
		t.Fatal(err)
	}
	if !killed.Load() {
		t.Skip("victim never answered twice; sweep finished before the kill")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("document diverges after replica death:\n got: %s\nwant: %s", got, want)
	}
	t.Logf("supervision after death: %+v", stats)
	checkGoroutines(t, before)
}

// countingTransport calls onResponse after each successful round trip.
type countingTransport struct {
	onResponse func(*http.Request)
}

func (t *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err == nil && t.onResponse != nil {
		t.onResponse(req)
	}
	return resp, err
}

// TestSweepAllReplicasDownFallback points the coordinator at a fleet that
// is entirely gone: every shard must complete through in-process fallback,
// the output must be byte-identical, and the number of doomed HTTP attempts
// must stay bounded (no retry storm against dead sockets).
func TestSweepAllReplicasDownFallback(t *testing.T) {
	specs := testSpecs()[:1]
	want := wantDocument(t, specs, 1)
	before := runtime.NumGoroutine()

	// Real listeners, closed immediately: connection-refused territory.
	dead := make([]string, 2)
	for i := range dead {
		ts := httptest.NewServer(http.NotFoundHandler())
		dead[i] = ts.URL
		ts.Close()
	}
	c, err := fabric.New(fabric.Config{
		Endpoints:        dead,
		MaxAttempts:      2,
		BaseBackoff:      time.Millisecond,
		FailureThreshold: 2,
		ProbeInterval:    5 * time.Millisecond,
		Fallback:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := c.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fallback document diverges:\n got: %s\nwant: %s", got, want)
	}
	if stats.Fallbacks != stats.Tasks {
		t.Fatalf("want every task to fall back: %+v", stats)
	}
	if stats.Attempts > 4*stats.Tasks {
		t.Fatalf("retry storm against dead fleet: %+v", stats)
	}
	checkGoroutines(t, before)
}

// TestSweepHedgesStragglers pins hedging: with one replica made pathologically
// slow and one fast, the duplicate attempt must win and the document must
// not change.
func TestSweepHedgesStragglers(t *testing.T) {
	specs := testSpecs()[:1]
	want := wantDocument(t, specs, 1)
	before := runtime.NumGoroutine()

	servers, urls := startReplicas(t, 2, serve.Config{Parallel: 1})
	slowHost := strings.TrimPrefix(servers[0].URL, "http://")
	ft := &faultinject.Transport{
		Seed: 3,
		Rules: []faultinject.Rule{{
			Match: func(r *http.Request) bool {
				return r.Host == slowHost && strings.HasSuffix(r.URL.Path, "/run")
			},
			Every: 1,
			Delay: 400 * time.Millisecond,
		}},
	}
	c, err := fabric.New(fabric.Config{
		Endpoints: urls,
		Shards:    2,
		Client:    &http.Client{Transport: ft},
		Hedge:     25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := c.Sweep(context.Background(), specs)
	closeAll(servers)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("hedged document diverges:\n got: %s\nwant: %s", got, want)
	}
	if stats.Hedges == 0 {
		t.Fatalf("slow replica never hedged: %+v", stats)
	}
	checkGoroutines(t, before)
}

// TestSweepTerminalErrorAborts pins the terminal/retriable split: a replica
// that deterministically refuses the request (per-shard work bound) must
// abort the sweep on the first answer, without retries and without
// fallback masking the client error.
func TestSweepTerminalErrorAborts(t *testing.T) {
	specs := testSpecs()[:1]
	servers, urls := startReplicas(t, 1, serve.Config{MaxJobs: 1})
	defer closeAll(servers)

	c, err := fabric.New(fabric.Config{Endpoints: urls, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := c.Sweep(context.Background(), specs)
	if !errors.Is(err, fabric.ErrTerminal) {
		t.Fatalf("err = %v, want ErrTerminal", err)
	}
	if stats.Retries != 0 {
		t.Fatalf("terminal error was retried: %+v", stats)
	}
}

// TestSweepExhaustionWithoutFallback: dead fleet, no fallback — the sweep
// must fail with ErrExhausted after a bounded number of attempts rather
// than hang.
func TestSweepExhaustionWithoutFallback(t *testing.T) {
	specs := testSpecs()[:1]
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()

	c, err := fabric.New(fabric.Config{
		Endpoints:        []string{url},
		Shards:           1,
		MaxAttempts:      2,
		BaseBackoff:      time.Millisecond,
		FailureThreshold: 100, // keep the breaker closed: exhaustion, not fallback, under test
	})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := c.Sweep(context.Background(), specs)
	if !errors.Is(err, fabric.ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if stats.Attempts > 2 {
		t.Fatalf("more attempts than MaxAttempts: %+v", stats)
	}
}

// TestSweepCancellation: canceling the context mid-sweep returns promptly
// with the context error and leaks nothing.
func TestSweepCancellation(t *testing.T) {
	specs := testSpecs()
	before := runtime.NumGoroutine()

	servers, urls := startReplicas(t, 2, serve.Config{Parallel: 1})
	ft := &faultinject.Transport{
		Rules: []faultinject.Rule{{Every: 1, Delay: 200 * time.Millisecond}},
	}
	c, err := fabric.New(fabric.Config{
		Endpoints: urls,
		Client:    &http.Client{Transport: ft},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = c.Sweep(ctx, specs)
	closeAll(servers)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v to unwind", elapsed)
	}
	checkGoroutines(t, before)
}

func TestNewRejectsUselessConfig(t *testing.T) {
	if _, err := fabric.New(fabric.Config{}); err == nil {
		t.Fatal("no endpoints, no fallback accepted")
	}
	if _, err := fabric.New(fabric.Config{Fallback: true}); err != nil {
		t.Fatalf("fallback-only config rejected: %v", err)
	}
	if _, err := fabric.New(fabric.Config{Endpoints: []string{"http://x"}, Shards: -1}); err == nil {
		t.Fatal("negative shards accepted")
	}
}

// TestSweepFallbackOnly pins the degenerate deployment: zero endpoints,
// fallback on — the fabric is then just a sharded in-process runner and
// must still reproduce the document.
func TestSweepFallbackOnly(t *testing.T) {
	specs := testSpecs()
	want := wantDocument(t, specs, 1)
	c, err := fabric.New(fabric.Config{Fallback: true, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := c.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fallback-only document diverges:\n got: %s\nwant: %s", got, want)
	}
	if stats.Fallbacks != stats.Tasks || stats.Attempts != 0 {
		t.Fatalf("fallback-only stats off: %+v", stats)
	}
}

// TestSweepSeedThreading: a non-default seed shifts the whole grid exactly
// like localbench -seed, distributed or not.
func TestSweepSeedThreading(t *testing.T) {
	specs := testSpecs()[:1]
	want := wantDocument(t, specs, 3)
	servers, urls := startReplicas(t, 2, serve.Config{})
	defer closeAll(servers)
	c, err := fabric.New(fabric.Config{Endpoints: urls, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("seed=3 document diverges:\n got: %s\nwant: %s", got, want)
	}
	if bytes.Equal(got, wantDocument(t, specs, 1)) {
		t.Fatal("seed had no effect")
	}
}
