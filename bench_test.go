package unilocal

// One benchmark per experiment of DESIGN.md §3: each regenerates the
// measured counterpart of a Table 1 row, a corollary, or Figure 1 of the
// paper. The reported custom metrics are the LOCAL-model quantities the
// paper reasons about: "rounds" (the running time of the algorithm on that
// instance) and, where relevant, "ratio" (uniform rounds / non-uniform
// rounds with correct guesses — the paper's headline "same asymptotic
// running time" claim corresponds to this ratio staying bounded as n
// grows). Wall-clock ns/op only measures the simulator.

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/unilocal/unilocal/internal/algorithms/luby"
	"github.com/unilocal/unilocal/internal/algorithms/seqmis"
	"github.com/unilocal/unilocal/internal/engines"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
	"github.com/unilocal/unilocal/internal/sweep"
)

// benchCorpus caches every benchmark topology across the whole binary run:
// the same (family, params, seed) graph backs every benchmark that asks for
// it, exactly as cmd/localbench shares its corpus across experiments.
var benchCorpus = graph.NewCorpus()

// run executes one simulation through the sweep scheduler (inline, one job)
// and fails the benchmark on error.
func run(b *testing.B, g *graph.Graph, a local.Algorithm, seed int64) *local.Result {
	b.Helper()
	results, _ := sweep.Run([]sweep.Job{{
		Graph: g,
		Algo:  func() local.Algorithm { return a },
		Seed:  seed,
	}}, sweep.Options{Parallel: 1})
	if results[0].Err != nil {
		b.Fatal(results[0].Err)
	}
	return results[0].Res
}

// benchGraphs builds the standard sweep families.
func benchCycle(b *testing.B, n int) *graph.Graph {
	g, err := benchCorpus.Cycle(n)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchRegular(b *testing.B, n, d int) *graph.Graph {
	g, err := benchCorpus.RandomRegular(n, d, int64(n+d))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchGNP(b *testing.B, n int, avgDeg float64) *graph.Graph {
	g, err := benchCorpus.GNP(n, avgDeg/float64(n-1), int64(n))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// compare runs the non-uniform baseline (correct guesses) and the uniform
// transform as one scheduler batch per iteration, reporting rounds and the
// ratio.
func compare(b *testing.B, g *graph.Graph, nonUniform, uniform local.Algorithm, check func([]any) error) {
	b.Helper()
	var nu, un *local.Result
	for i := 0; i < b.N; i++ {
		results, _ := sweep.Run([]sweep.Job{
			{Graph: g, Algo: func() local.Algorithm { return nonUniform }, Seed: int64(i)},
			{Graph: g, Algo: func() local.Algorithm { return uniform }, Seed: int64(i)},
		}, sweep.Options{Parallel: 1})
		if err := sweep.FirstErr(results); err != nil {
			b.Fatal(err)
		}
		nu, un = results[0].Res, results[1].Res
	}
	if err := check(un.Outputs); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(nu.Rounds), "rounds/nonuniform")
	b.ReportMetric(float64(un.Rounds), "rounds/uniform")
	b.ReportMetric(float64(un.Rounds)/float64(nu.Rounds), "ratio")
}

func misCheck(g *graph.Graph) func([]any) error {
	return func(outputs []any) error {
		in, err := problems.Bools(outputs)
		if err != nil {
			return err
		}
		return problems.ValidMIS(g, in)
	}
}

// BenchmarkTable1_MISColoring_DeltaLogStar reproduces the "Det. MIS and
// (Δ+1)-coloring, O(Δ + log* n)" row (E1): colormis with correct {Δ, m}
// versus the Theorem 1 uniform algorithm.
func BenchmarkTable1_MISColoring_DeltaLogStar(b *testing.B) {
	uniform := engines.UniformMISDelta()
	for _, n := range []int{256, 1024, 4096} {
		for _, fam := range []struct {
			name string
			g    *graph.Graph
		}{
			{"cycle", benchCycle(b, n)},
			{"regular4", benchRegular(b, n, 4)},
			{"gnp8", benchGNP(b, n, 8)},
		} {
			b.Run(fmt.Sprintf("%s/n=%d", fam.name, n), func(b *testing.B) {
				compare(b, fam.g, engines.NonUniformMISDelta(engines.GraphParams(fam.g)), uniform, misCheck(fam.g))
			})
		}
	}
}

// BenchmarkTable1_MIS_NKnowledge reproduces the "Det. MIS, time depending
// on the global size only" row (E2; Panconesi–Srinivasan slot, greedy
// substitution per DESIGN.md §4).
func BenchmarkTable1_MIS_NKnowledge(b *testing.B) {
	uniform := engines.UniformMISID()
	for _, n := range []int{64, 256, 1024} {
		g := benchGNP(b, n, 6)
		b.Run(fmt.Sprintf("gnp6/n=%d", n), func(b *testing.B) {
			compare(b, g, engines.NonUniformMISID(engines.GraphParams(g)), uniform, misCheck(g))
		})
	}
}

// BenchmarkTable1_MIS_Arboricity reproduces the arboricity rows (E3):
// H-partition MIS on bounded-arboricity graphs, uniform via the
// product-form set-sequence.
func BenchmarkTable1_MIS_Arboricity(b *testing.B) {
	uniform := engines.UniformMISArb()
	for _, n := range []int{256, 1024} {
		for _, a := range []int{1, 3} {
			g := graph.ForestUnion(n, a, int64(n*a))
			b.Run(fmt.Sprintf("forest%d/n=%d", a, n), func(b *testing.B) {
				compare(b, g, engines.NonUniformMISArb(engines.GraphParams(g)), uniform, misCheck(g))
			})
		}
	}
}

// BenchmarkTable1_LambdaColoring reproduces the λ(Δ+1)-coloring trade-off
// row (E4): more colors buy fewer rounds; Theorem 5 uniformizes each point.
func BenchmarkTable1_LambdaColoring(b *testing.B) {
	g := benchRegular(b, 1024, 8)
	for _, lambda := range []int{1, 2, 4, 8} {
		uniform, err := engines.UniformLambdaColoring(lambda)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("lambda=%d", lambda), func(b *testing.B) {
			compare(b, g, engines.NonUniformLambdaColoring(lambda)(engines.GraphParams(g)), uniform, func(outputs []any) error {
				colors, err := problems.Ints(outputs)
				if err != nil {
					return err
				}
				return problems.ValidColoring(g, colors, 0)
			})
		})
	}
}

// BenchmarkTable1_EdgeColoring reproduces the edge-coloring rows (E5) via
// the line-graph lift.
func BenchmarkTable1_EdgeColoring(b *testing.B) {
	for _, n := range []int{256, 1024} {
		g := benchRegular(b, n, 6)
		b.Run(fmt.Sprintf("regular6/n=%d", n), func(b *testing.B) {
			var res *local.Result
			for i := 0; i < b.N; i++ {
				res = run(b, g, engines.NonUniformEdgeColoring(engines.GraphParams(g)), int64(i))
			}
			b.ReportMetric(float64(res.Rounds), "rounds/nonuniform")
		})
	}
	uniform, err := engines.UniformEdgeColoring()
	if err != nil {
		b.Fatal(err)
	}
	g := benchRegular(b, 256, 6)
	b.Run("uniform/regular6/n=256", func(b *testing.B) {
		var res *local.Result
		for i := 0; i < b.N; i++ {
			res = run(b, g, uniform, int64(i))
		}
		b.ReportMetric(float64(res.Rounds), "rounds/uniform")
	})
}

// BenchmarkTable1_MaximalMatching reproduces the maximal-matching row (E6).
func BenchmarkTable1_MaximalMatching(b *testing.B) {
	uniform := engines.UniformMatching()
	for _, n := range []int{256, 1024} {
		g := benchGNP(b, n, 5)
		b.Run(fmt.Sprintf("gnp5/n=%d", n), func(b *testing.B) {
			compare(b, g, engines.NonUniformMatching(engines.GraphParams(g)), uniform, func(outputs []any) error {
				return problems.ValidMaximalMatching(g, outputs)
			})
		})
	}
}

// BenchmarkTable1_RulingSet reproduces the randomized ruling-set row (E7):
// weak Monte Carlo baseline vs the Theorem 2 uniform Las Vegas transform.
func BenchmarkTable1_RulingSet(b *testing.B) {
	for _, beta := range []int{1, 2} {
		uniform := engines.LasVegasRulingSet(beta)
		g := benchGNP(b, 512, 8)
		b.Run(fmt.Sprintf("beta=%d/gnp8/n=512", beta), func(b *testing.B) {
			compare(b, g, engines.NonUniformRulingSet(beta)(engines.GraphParams(g)), uniform, func(outputs []any) error {
				in, err := problems.Bools(outputs)
				if err != nil {
					return err
				}
				return problems.ValidRulingSet(g, in, 2, beta)
			})
		})
	}
}

// BenchmarkTable1_LubyMIS reproduces the uniform randomized MIS row (E8):
// rounds grow logarithmically with n. Under -short (the CI perf smoke) the
// largest instance is dropped.
func BenchmarkTable1_LubyMIS(b *testing.B) {
	sizes := []int{1024, 4096, 16384}
	if testing.Short() {
		sizes = sizes[:2]
	}
	for _, n := range sizes {
		g := benchGNP(b, n, 8)
		b.Run(fmt.Sprintf("gnp8/n=%d", n), func(b *testing.B) {
			var res *local.Result
			for i := 0; i < b.N; i++ {
				res = run(b, g, luby.New(), int64(i))
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
		})
	}
}

// BenchmarkCorollary1_FastestOf reproduces the min{...} of Corollary 1(i)
// via Theorem 4 (E9): on each extreme topology the combination tracks its
// best engine.
func BenchmarkCorollary1_FastestOf(b *testing.B) {
	combined := engines.BestMIS()
	cyc := benchCycle(b, 2048)
	for _, fam := range []struct {
		name string
		g    *graph.Graph
	}{
		{"star", graph.Star(2048)},     // arboricity engine territory (a=1, Δ=n-1)
		{"clique", graph.Complete(96)}, // identity engine territory (Δ = n-1, a large)
		{"cycle", cyc},                 // Δ-engine territory (Δ = 2)
	} {
		b.Run(fam.name, func(b *testing.B) {
			var res *local.Result
			for i := 0; i < b.N; i++ {
				res = run(b, fam.g, combined, int64(i))
			}
			if err := misCheck(fam.g)(res.Outputs); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
		})
	}
}

// BenchmarkCorollary1_DegPlus1Coloring reproduces the Section 5.1 product
// construction (E10): uniform (deg+1)-coloring from a uniform MIS.
func BenchmarkCorollary1_DegPlus1Coloring(b *testing.B) {
	uniform := engines.UniformDegPlusOneColoring(engines.LubyMIS())
	for _, n := range []int{256, 1024} {
		g := benchGNP(b, n, 6)
		b.Run(fmt.Sprintf("gnp6/n=%d", n), func(b *testing.B) {
			var res *local.Result
			for i := 0; i < b.N; i++ {
				res = run(b, g, uniform, int64(i))
			}
			colors, err := problems.Ints(res.Outputs)
			if err != nil {
				b.Fatal(err)
			}
			if err := problems.ValidColoring(g, colors, g.MaxDegree()+1); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
		})
	}
}

// BenchmarkFigure1_AlternatingCascade reproduces Figure 1 (E11): the
// alternating algorithm's per-iteration shrinkage of the surviving graph,
// driven by a weak Monte Carlo engine so several iterations are exercised.
func BenchmarkFigure1_AlternatingCascade(b *testing.B) {
	g := benchGNP(b, 2048, 8)
	lv := engines.LasVegasMIS()
	var res *local.Result
	for i := 0; i < b.N; i++ {
		res = run(b, g, lv, int64(i))
	}
	if err := misCheck(g)(res.Outputs); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Rounds), "rounds")
	// The cascade itself (survivors per iteration) is printed by
	// cmd/localtrace; here we report how many nodes survived past the first
	// pruning phase as a cascade proxy.
	first := res.Rounds
	for _, h := range res.HaltRounds {
		if h < first {
			first = h
		}
	}
	late := 0
	for _, h := range res.HaltRounds {
		if h > first {
			late++
		}
	}
	b.ReportMetric(float64(late), "survivors_after_first_prune")
}

// BenchmarkTheorem2_LasVegas reproduces the Monte-Carlo-to-Las-Vegas
// transformation (E12) on MIS.
func BenchmarkTheorem2_LasVegas(b *testing.B) {
	lv := engines.LasVegasMIS()
	for _, n := range []int{256, 1024, 4096} {
		g := benchGNP(b, n, 8)
		b.Run(fmt.Sprintf("gnp8/n=%d", n), func(b *testing.B) {
			total := 0
			var res *local.Result
			for i := 0; i < b.N; i++ {
				res = run(b, g, lv, int64(i))
				total += res.Rounds
			}
			if err := misCheck(g)(res.Outputs); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(total)/float64(b.N), "rounds/avg")
		})
	}
}

// BenchmarkObservation21_Composition measures the α-synchronizer
// composition (E13): composed time stays below the sum of stage times plus
// the wake-up skew.
func BenchmarkObservation21_Composition(b *testing.B) {
	g := benchGNP(b, 1024, 6)
	delayed := local.WithWakeup(luby.New(), func(id int64) int { return int(id % 17) })
	var res *local.Result
	for i := 0; i < b.N; i++ {
		res = run(b, g, delayed, int64(i))
	}
	if err := misCheck(g)(res.Outputs); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Rounds), "rounds")
}

// BenchmarkAblation_TransformerOverhead isolates the Theorem 1 overhead
// (E14): the ratio uniform/non-uniform across a size sweep must stay flat.
func BenchmarkAblation_TransformerOverhead(b *testing.B) {
	uniform := engines.UniformMISDelta()
	for _, n := range []int{128, 512, 2048, 8192} {
		g := benchRegular(b, n, 4)
		b.Run(fmt.Sprintf("regular4/n=%d", n), func(b *testing.B) {
			compare(b, g, engines.NonUniformMISDelta(engines.GraphParams(g)), uniform, misCheck(g))
		})
	}
}

// BenchmarkAblation_PruningRadius measures the cost of the pruning phase as
// a function of the pruner radius β (every alternating window pays
// radius+2 rounds).
func BenchmarkAblation_PruningRadius(b *testing.B) {
	g := benchGNP(b, 512, 8)
	for _, beta := range []int{1, 2, 3} {
		uniform := engines.LasVegasRulingSet(beta)
		b.Run(fmt.Sprintf("beta=%d", beta), func(b *testing.B) {
			var res *local.Result
			for i := 0; i < b.N; i++ {
				res = run(b, g, uniform, int64(i))
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
		})
	}
}

// BenchmarkAblation_SeqNumberShapes contrasts the additive (s_f = 1) and
// product (s_f = O(log)) sequence-number machineries on the same engine by
// counting scheduled guess vectors per iteration.
func BenchmarkAblation_SeqNumberShapes(b *testing.B) {
	_, additive := engines.MISDeltaEngine()
	_, product := engines.MISArbEngine()
	var addTotal, prodTotal int
	for i := 0; i < b.N; i++ {
		addTotal, prodTotal = 0, 0
		for iter := 1; iter <= 12; iter++ {
			addTotal += len(additive.Sets(1 << uint(iter)))
			prodTotal += len(product.Sets(1 << uint(iter)))
		}
	}
	b.ReportMetric(float64(addTotal), "vectors/additive")
	b.ReportMetric(float64(prodTotal), "vectors/product")
}

// BenchmarkEngineThroughput measures raw simulator speed (node-rounds/s) as
// an implementation metric.
func BenchmarkEngineThroughput(b *testing.B) {
	g := benchGNP(b, 8192, 8)
	b.ResetTimer()
	var nodeRounds int64
	for i := 0; i < b.N; i++ {
		res := run(b, g, seqmis.New(), int64(i))
		for _, h := range res.HaltRounds {
			nodeRounds += int64(h + 1)
		}
	}
	b.ReportMetric(float64(nodeRounds)/b.Elapsed().Seconds(), "node-rounds/s")
}

// sweepBatch is the standard run-level throughput workload: a mixed batch of
// Luby runs across graph families, sizes and seeds — many independent whole
// simulations, the shape cmd/localbench -parallel schedules.
func sweepBatch(b *testing.B, seeds int) []sweep.Job {
	b.Helper()
	var jobs []sweep.Job
	a := luby.New()
	for _, n := range []int{512, 1024, 2048} {
		for _, g := range []*graph.Graph{
			benchGNP(b, n, 8),
			benchCycle(b, n),
			benchRegular(b, n, 4),
		} {
			for seed := int64(0); seed < int64(seeds); seed++ {
				jobs = append(jobs, sweep.Job{
					Graph: g,
					Algo:  func() local.Algorithm { return a },
					Seed:  seed,
				})
			}
		}
	}
	return jobs
}

// BenchmarkSweepThroughput measures batch scheduling of whole simulations:
// sequential (the old harness behaviour: one run at a time) versus one
// scheduler worker per core. jobs/sec is the headline run-level throughput
// metric tracked in BENCH.json; engine-allocs/job must stay near zero once
// the per-worker pooled states are warm.
func BenchmarkSweepThroughput(b *testing.B) {
	jobs := sweepBatch(b, 4)
	for _, mode := range []struct {
		name     string
		parallel int
	}{
		{"sequential", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(fmt.Sprintf("%s/jobs=%d", mode.name, len(jobs)), func(b *testing.B) {
			b.ReportAllocs()
			var stats sweep.Stats
			for i := 0; i < b.N; i++ {
				results, s := sweep.Run(jobs, sweep.Options{Parallel: mode.parallel})
				if err := sweep.FirstErr(results); err != nil {
					b.Fatal(err)
				}
				stats = s
			}
			b.ReportMetric(stats.JobsPerSec, "jobs/s")
			b.ReportMetric(float64(stats.EngineAllocs)/float64(stats.Jobs), "engine-allocs/job")
		})
	}
}

// BenchmarkSweepWarmPool isolates the RunState pool: back-to-back same-shape
// runs must be near-zero-alloc on the engine side (node construction aside),
// the warm path every scheduler worker hits after its first job.
func BenchmarkSweepWarmPool(b *testing.B) {
	g := benchGNP(b, 4096, 8)
	a := luby.New()
	st := local.AcquireRunState(g.N(), g.NumEdges())
	defer st.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := local.Run(g, a, local.Options{Seed: int64(i), Sequential: true, State: st}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.Allocs()), "state-allocs-total")
}
