// Command benchguard compares a freshly regenerated BENCH.json against the
// committed one (benchstat-style, but over the localbench record schema
// declared in internal/benchfmt) and fails loudly on regressions:
//
//   - Deterministic fields (experiment, label, algorithm, n, rounds,
//     messages, steps, ratio) must match record for record: a mismatch means
//     the reproduction itself changed, which a perf PR must never do
//     silently. The schema-v4 instruction block's deterministic members
//     (node-steps, steps/job, frontier occupancy) are held to the same
//     standard.
//
//   - Pinned hot-path experiments (-pin, default the transformer-heavy
//     tables) must not regress their wall time by more than -tolerance
//     (default 20%). Because the committed baseline and the fresh file are
//     usually produced on different machines (author laptop vs CI runner),
//     the gate is machine-normalized by default: old wall times are
//     rescaled by the speed ratio measured on the *non-pinned* experiments
//     (so the gated quantity never dilutes its own denominator), and only a
//     pinned hot path growing relative to that reference trips the gate.
//     -normalize=false compares raw wall times (same-machine A/B runs);
//     -tolerance -1 disables the timing gate entirely.
//
//   - The instructions-per-job trend (schema v4: sweep ns per node-step)
//     must not regress by more than -instr-tolerance (default 20%) after
//     the same machine normalization. The trend line is printed whether it
//     moved up or down, so wins land in the CI log too; -instr-tolerance -1
//     disables only this gate.
//
// Files that cannot be compared meaningfully — different seed/large flags,
// different -parallel/-workers settings, or an unknown schema version — are
// an error, not a silent skip: a stale or misgenerated baseline must not
// disable the gate while CI stays green.
//
// Usage:
//
//	benchguard -old BENCH.json -new BENCH.ci.json [-tolerance 0.20]
//	           [-instr-tolerance 0.20] [-pin E1,E3,E6] [-normalize=true]
//
// CI regenerates BENCH.ci.json on every commit and runs this guard against
// the committed BENCH.json, so a hot-path regression fails the build with a
// per-experiment wall-time table instead of drifting by unnoticed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/unilocal/unilocal/internal/benchfmt"
)

var (
	flagOld       = flag.String("old", "BENCH.json", "committed baseline")
	flagNew       = flag.String("new", "BENCH.ci.json", "freshly regenerated results")
	flagTolerance = flag.Float64("tolerance", 0.20, "max allowed wall-time regression on pinned experiments (negative disables timing checks)")
	flagInstrTol  = flag.Float64("instr-tolerance", 0.20, "max allowed ns-per-node-step regression on the schema-v4 instruction trend (negative disables it)")
	flagPin       = flag.String("pin", "E1,E3,E6", "comma-separated experiments pinned for the timing check")
	flagNormalize = flag.Bool("normalize", true, "compare per-experiment shares of total wall time (machine-independent) instead of raw wall times")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func load(path string) (*benchfmt.Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d benchfmt.Doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.SchemaVersion != benchfmt.SchemaVersion {
		return nil, fmt.Errorf("%s: schema version %d, want %d (regenerate with cmd/localbench)",
			path, d.SchemaVersion, benchfmt.SchemaVersion)
	}
	return &d, nil
}

func run() error {
	old, err := load(*flagOld)
	if err != nil {
		return err
	}
	fresh, err := load(*flagNew)
	if err != nil {
		return err
	}
	if err := checkDeterministic(old, fresh); err != nil {
		return err
	}
	fmt.Printf("benchguard: %d records deterministic-identical (seed %d)\n", len(old.Results), old.Seed)
	if *flagTolerance < 0 && *flagInstrTol < 0 {
		fmt.Println("benchguard: timing checks disabled")
		return nil
	}
	if old.Parallel != fresh.Parallel || old.Workers != fresh.Workers {
		return fmt.Errorf("parallel/workers differ (%d/%d vs %d/%d): regenerate both files with the same flags, or pass -tolerance -1 to skip timing",
			old.Parallel, old.Workers, fresh.Parallel, fresh.Workers)
	}
	return checkTimings(old, fresh)
}

// checkDeterministic requires the reproduction (what ran, and what it
// computed) to be unchanged record for record.
func checkDeterministic(old, fresh *benchfmt.Doc) error {
	if old.Seed != fresh.Seed || old.Large != fresh.Large {
		return fmt.Errorf("incomparable files: seed/large flags differ (%d/%v vs %d/%v)",
			old.Seed, old.Large, fresh.Seed, fresh.Large)
	}
	if len(old.Results) != len(fresh.Results) {
		return fmt.Errorf("record count changed: %d vs %d", len(old.Results), len(fresh.Results))
	}
	if (old.Corpus == nil) != (fresh.Corpus == nil) {
		return fmt.Errorf("corpus block present in one file only (old %v, new %v): regenerate both with the same localbench",
			old.Corpus != nil, fresh.Corpus != nil)
	}
	if o, n := old.Corpus, fresh.Corpus; o != nil {
		if o.Family != n.Family || o.N != n.N || o.Edges != n.Edges || o.ImageBytes != n.ImageBytes {
			return fmt.Errorf("corpus block deterministic fields diverged: %s/n=%d/edges=%d/image=%dB vs %s/n=%d/edges=%d/image=%dB",
				o.Family, o.N, o.Edges, o.ImageBytes, n.Family, n.N, n.Edges, n.ImageBytes)
		}
	}
	if (old.Instr == nil) != (fresh.Instr == nil) {
		return fmt.Errorf("instruction block present in one file only (old %v, new %v): regenerate both with the same localbench",
			old.Instr != nil, fresh.Instr != nil)
	}
	if o, n := old.Instr, fresh.Instr; o != nil {
		if o.NodeSteps != n.NodeSteps || o.StepsPerJob != n.StepsPerJob || o.FrontierOccupancy != n.FrontierOccupancy {
			return fmt.Errorf("instruction block deterministic fields diverged: steps %d→%d steps/job %.2f→%.2f occupancy %.4f→%.4f",
				o.NodeSteps, n.NodeSteps, o.StepsPerJob, n.StepsPerJob, o.FrontierOccupancy, n.FrontierOccupancy)
		}
	}
	for i := range old.Results {
		o, n := old.Results[i], fresh.Results[i]
		if o.Experiment != n.Experiment || o.Label != n.Label || o.Algorithm != n.Algorithm || o.N != n.N {
			return fmt.Errorf("record %d identity changed: %s/%s/%s/n=%d vs %s/%s/%s/n=%d",
				i, o.Experiment, o.Label, o.Algorithm, o.N, n.Experiment, n.Label, n.Algorithm, n.N)
		}
		if o.Rounds != n.Rounds || o.Messages != n.Messages || o.Steps != n.Steps || o.Ratio != n.Ratio {
			return fmt.Errorf("record %d (%s/%s) deterministic fields diverged: rounds %d→%d messages %d→%d steps %d→%d ratio %.4f→%.4f",
				i, o.Experiment, o.Label, o.Rounds, n.Rounds, o.Messages, n.Messages, o.Steps, n.Steps, o.Ratio, n.Ratio)
		}
	}
	return nil
}

// checkTimings compares per-experiment wall time on the pinned experiments,
// benchstat-style. With -normalize, old wall times are rescaled by the
// machine-speed ratio measured on the non-pinned experiments, cancelling
// uniform host differences without letting a pinned regression inflate its
// own denominator (a 1.5x slowdown of the heaviest pinned experiment would
// otherwise drag the whole-suite factor up and mask itself).
func checkTimings(old, fresh *benchfmt.Doc) error {
	pins := map[string]bool{}
	for _, p := range strings.Split(*flagPin, ",") {
		if p = strings.TrimSpace(strings.ToUpper(p)); p != "" {
			pins[p] = true
		}
	}
	sum := func(d *benchfmt.Doc) (perExp map[string]int64, total, unpinned int64) {
		perExp = map[string]int64{}
		for _, r := range d.Results {
			perExp[r.Experiment] += r.WallNs
			total += r.WallNs
			if !pins[r.Experiment] {
				unpinned += r.WallNs
			}
		}
		return perExp, total, unpinned
	}
	oldWall, oldTotal, oldRef := sum(old)
	newWall, newTotal, newRef := sum(fresh)
	if oldTotal == 0 || newTotal == 0 {
		fmt.Println("benchguard: no wall-time data; skipping timing checks")
		return nil
	}
	// factor rescales old wall times onto the new machine: with -normalize
	// it is the speed ratio of the non-pinned reference set (falling back to
	// the whole suite when everything is pinned), without it 1 (raw
	// comparison).
	factor := 1.0
	mode := "raw"
	if *flagNormalize {
		if oldRef > 0 && newRef > 0 {
			factor = float64(newRef) / float64(oldRef)
			mode = fmt.Sprintf("normalized vs non-pinned reference, machine factor %.2fx", factor)
		} else {
			factor = float64(newTotal) / float64(oldTotal)
			mode = fmt.Sprintf("normalized vs whole suite (no non-pinned reference), machine factor %.2fx", factor)
		}
	}
	fmt.Printf("benchguard: timing mode: %s\n", mode)
	fmt.Println("| experiment | old ms | new ms | delta | pinned |")
	fmt.Println("|---|---|---|---|---|")
	var failures []string
	for _, exp := range experimentOrder(old) {
		o, n := oldWall[exp], newWall[exp]
		if o == 0 {
			continue
		}
		delta := float64(n)/(float64(o)*factor) - 1
		pinned := ""
		if pins[exp] {
			pinned = "yes"
			if *flagTolerance >= 0 && delta > *flagTolerance {
				failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (limit %.0f%%)",
					exp, 100*delta, 100**flagTolerance))
			}
		}
		fmt.Printf("| %s | %.1f | %.1f | %+.1f%% | %s |\n",
			exp, float64(o)/1e6, float64(n)/1e6, 100*delta, pinned)
	}
	if o, n := old.Corpus, fresh.Corpus; o != nil && n != nil && o.WarmNs > 0 && n.WarmNs > 0 {
		fmt.Printf("corpus disk tier: cold/warm %.1fx → %.1fx (%s n=%d, image %d bytes)\n",
			o.Speedup, n.Speedup, n.Family, n.N, n.ImageBytes)
	}
	if old.Sweep.JobsPerSec > 0 && fresh.Sweep.JobsPerSec > 0 {
		delta := fresh.Sweep.JobsPerSec/old.Sweep.JobsPerSec - 1
		fmt.Printf("sweep throughput: %.1f → %.1f jobs/s (%+.1f%%), engine allocs %d → %d\n",
			old.Sweep.JobsPerSec, fresh.Sweep.JobsPerSec, 100*delta,
			old.Sweep.EngineAllocs, fresh.Sweep.EngineAllocs)
	}
	// Instructions-per-job trend (schema v4): ns per node-step over the whole
	// sweep, machine-normalized by the same factor as the pinned wall gates.
	// Printed unconditionally — improvements should be as visible in the CI
	// log as regressions are fatal.
	if o, n := old.Instr, fresh.Instr; o != nil && n != nil && o.NsPerStep > 0 && n.NsPerStep > 0 {
		adjusted := o.NsPerStep * factor
		delta := n.NsPerStep/adjusted - 1
		fmt.Printf("instruction budget: %.1f → %.1f ns/step (%+.1f%% after normalization; %.0f steps/job, frontier occupancy %.3f)\n",
			o.NsPerStep, n.NsPerStep, 100*delta, n.StepsPerJob, n.FrontierOccupancy)
		if *flagInstrTol >= 0 && delta > *flagInstrTol {
			failures = append(failures, fmt.Sprintf("ns/step regressed %.1f%% (limit %.0f%%)",
				100*delta, 100**flagInstrTol))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("pinned hot-path regression: %s", strings.Join(failures, "; "))
	}
	return nil
}

// experimentOrder returns the experiments in first-appearance order.
func experimentOrder(d *benchfmt.Doc) []string {
	seen := map[string]bool{}
	var order []string
	for _, r := range d.Results {
		if !seen[r.Experiment] {
			seen[r.Experiment] = true
			order = append(order, r.Experiment)
		}
	}
	return order
}
