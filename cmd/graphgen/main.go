// Command graphgen generates the benchmark graph families and prints their
// parameters (n, m, Δ, arboricity bounds, components, diameter for small
// graphs), optionally emitting Graphviz DOT for inspection.
//
// The families and their parameters come from the scenario layer's shared
// family table (internal/scenario.Families) — the same names a scenario
// file's "graph" block uses — so this help text, cmd/scenarioctl -families
// and the corpus validator can never enumerate different lists. Run
// graphgen -families for the table.
//
// Usage:
//
//	graphgen -family gnp -n 100 -p 0.05 [-dot] [-seed S]
//	graphgen -family regular -n 64 -d 4
//	graphgen -family smallworld -n 256 -k 6 -beta 0.1
//	graphgen -family geometric -n 256 -r 0.08
//	graphgen -family ba -n 512 -k 3
//	graphgen -family geometric -n 512 -r 0.07 -seed 2 -store /shared/corpus
//	graphgen -families
//
// With -store the built graph's CSR image is written into the given
// content-addressed store directory (the same format localserved and
// localsweepd consume via -corpus-dir), making graphgen the fleet
// pre-warming tool: generate once here, every replica mmap-loads. The store
// listing — image hash, node/edge counts, bytes — is printed after the
// build; a graph whose image already exists is loaded from it instead of
// regenerated.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/scenario"
)

var (
	flagFamily = flag.String("family", "gnp", "graph family: "+scenario.FamilyNames())
	flagN      = flag.Int("n", 64, "number of nodes (rows*cols for grid/torus; spine for caterpillar; clique for lollipop)")
	flagP      = flag.Float64("p", 0.05, "edge probability (gnp)")
	flagR      = flag.Float64("r", 0.1, "connection radius (geometric)")
	flagBeta   = flag.Float64("beta", 0.1, "rewiring probability (smallworld)")
	flagD      = flag.Int("d", 4, "degree (regular) / dimension (hypercube)")
	flagK      = flag.Int("k", 2, "forest count (forest) / legs (caterpillar) / tail (lollipop) / attachments (ba) / lattice degree (smallworld)")
	flagSeed   = flag.Int64("seed", 1, "generator seed")
	flagDot    = flag.Bool("dot", false, "emit Graphviz DOT to stdout")
	flagList   = flag.Bool("families", false, "list the family table and exit")
	flagStore  = flag.String("store", "", "CSR image store directory: write the built graph's content-addressed image into it (pre-warming for localserved/localsweepd -corpus-dir fleets) and list the store's images")
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run() error {
	flag.Parse()
	if *flagList {
		fmt.Print(scenario.FamilyTable())
		return nil
	}
	corpus := graph.NewCorpus()
	var store *graph.Store
	if *flagStore != "" {
		var err error
		store, err = graph.OpenStore(*flagStore)
		if err != nil {
			return err
		}
		// With the store attached, building through the corpus persists the
		// graph's CSR image (or loads an existing one) as a side effect.
		corpus.AttachStore(store)
	}
	g, err := toSpec().Build(corpus)
	if err != nil {
		return err
	}
	lo, hi := graph.ArboricityBounds(g)
	_, comps := graph.Components(g)
	fmt.Fprintf(os.Stderr, "family=%s n=%d edges=%d maxdeg=%d maxid=%d arboricity∈[%d,%d] components=%d\n",
		*flagFamily, g.N(), g.NumEdges(), g.MaxDegree(), g.MaxIDValue(), lo, hi, comps)
	if g.N() <= 2048 {
		fmt.Fprintf(os.Stderr, "diameter=%d degeneracy=%d\n", graph.Diameter(g), deg(g))
	}
	if store != nil {
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "store=%s written=%d disk-hits=%d\n", *flagStore, st.Written, st.Hits)
		images, err := store.Images()
		if err != nil {
			return err
		}
		for _, img := range images {
			fmt.Fprintf(os.Stderr, "image %s nodes=%d edges=%d bytes=%d\n", img.Name, img.Nodes, img.Edges, img.Bytes)
		}
	}
	if *flagDot {
		emitDOT(g)
	}
	return nil
}

// toSpec maps the flat flag set onto the declarative GraphSpec the family
// table consumes. Families that take rows/cols derive a square side from -n,
// preserving graphgen's historical -n semantics.
func toSpec() scenario.GraphSpec {
	gs := scenario.GraphSpec{
		Family: *flagFamily,
		N:      *flagN,
		D:      *flagD,
		K:      *flagK,
		P:      *flagP,
		Radius: *flagR,
		Beta:   *flagBeta,
		Seed:   *flagSeed,
	}
	switch gs.Family {
	case "grid", "torus":
		side := 1
		for (side+1)*(side+1) <= gs.N {
			side++
		}
		gs.Rows, gs.Cols = side, side
	}
	// Every flag has a default, so zero the parameters the family does not
	// consume — spec validation rejects set-but-unused parameters.
	return scenario.Normalize(gs)
}

func deg(g *graph.Graph) int {
	d, _ := graph.Degeneracy(g)
	return d
}

func emitDOT(g *graph.Graph) {
	fmt.Println("graph G {")
	for u := 0; u < g.N(); u++ {
		fmt.Printf("  %d [label=\"%d\"];\n", u, g.ID(u))
	}
	for _, e := range g.Edges() {
		fmt.Printf("  %d -- %d;\n", e.U, e.V)
	}
	fmt.Println("}")
}
