// Command graphgen generates the benchmark graph families and prints their
// parameters (n, m, Δ, arboricity bounds, components, diameter for small
// graphs), optionally emitting Graphviz DOT for inspection.
//
// Usage:
//
//	graphgen -family gnp -n 100 -p 0.05 [-dot] [-seed S]
//	graphgen -family regular -n 64 -d 4
//	graphgen -family forest -n 128 -k 3
//	graphgen -family cycle|path|star|clique|grid|tree -n 32
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/unilocal/unilocal/internal/graph"
)

var (
	flagFamily = flag.String("family", "gnp", "graph family: gnp, regular, forest, cycle, path, star, clique, grid, tree, caterpillar")
	flagN      = flag.Int("n", 64, "number of nodes (rows*cols for grid)")
	flagP      = flag.Float64("p", 0.05, "edge probability (gnp)")
	flagD      = flag.Int("d", 4, "degree (regular)")
	flagK      = flag.Int("k", 2, "forest count (forest) / legs (caterpillar)")
	flagSeed   = flag.Int64("seed", 1, "generator seed")
	flagDot    = flag.Bool("dot", false, "emit Graphviz DOT to stdout")
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run() error {
	flag.Parse()
	g, err := build()
	if err != nil {
		return err
	}
	lo, hi := graph.ArboricityBounds(g)
	_, comps := graph.Components(g)
	fmt.Fprintf(os.Stderr, "family=%s n=%d edges=%d maxdeg=%d maxid=%d arboricity∈[%d,%d] components=%d\n",
		*flagFamily, g.N(), g.NumEdges(), g.MaxDegree(), g.MaxIDValue(), lo, hi, comps)
	if g.N() <= 2048 {
		fmt.Fprintf(os.Stderr, "diameter=%d degeneracy=%d\n", graph.Diameter(g), deg(g))
	}
	if *flagDot {
		emitDOT(g)
	}
	return nil
}

func deg(g *graph.Graph) int {
	d, _ := graph.Degeneracy(g)
	return d
}

func build() (*graph.Graph, error) {
	n := *flagN
	switch *flagFamily {
	case "gnp":
		return graph.GNP(n, *flagP, *flagSeed)
	case "regular":
		return graph.RandomRegular(n, *flagD, *flagSeed)
	case "forest":
		return graph.ForestUnion(n, *flagK, *flagSeed), nil
	case "cycle":
		return graph.Cycle(n)
	case "path":
		return graph.Path(n), nil
	case "star":
		return graph.Star(n), nil
	case "clique":
		return graph.Complete(n), nil
	case "grid":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		return graph.Grid(side, side), nil
	case "tree":
		return graph.RandomTree(n, *flagSeed), nil
	case "caterpillar":
		return graph.Caterpillar(n, *flagK), nil
	default:
		return nil, fmt.Errorf("unknown family %q", *flagFamily)
	}
}

func emitDOT(g *graph.Graph) {
	fmt.Println("graph G {")
	for u := 0; u < g.N(); u++ {
		fmt.Printf("  %d [label=\"%d\"];\n", u, g.ID(u))
	}
	for _, e := range g.Edges() {
		fmt.Printf("  %d -- %d;\n", e.U, e.V)
	}
	fmt.Println("}")
}
