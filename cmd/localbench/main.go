// Command localbench regenerates the measured counterpart of every Table 1
// row and corollary of Korman–Sereni–Viennot as markdown tables: for each
// experiment it runs the non-uniform baseline with correct guesses and the
// uniform algorithm produced by the paper's transformers, and reports the
// round counts and their ratio. EXPERIMENTS.md is built from this output.
//
// Usage:
//
//	localbench [-exp all|E1|E2|E3|E4|E6|E7|E8|E9|E10|E13] [-seed N] [-large] [-workers N]
//	           [-json path] [-cpuprofile path] [-memprofile path]
//
// With -json, a machine-readable result set (schema documented in
// EXPERIMENTS.md) is additionally written to the given path; the committed
// BENCH.json at the repo root tracks the perf trajectory across PRs. The
// profile flags capture standard pprof profiles of the whole run, so
// hot-path regressions can be diagnosed without editing code.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/unilocal/unilocal/internal/algorithms/luby"
	"github.com/unilocal/unilocal/internal/engines"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "localbench:", err)
		os.Exit(1)
	}
}

var (
	flagExp     = flag.String("exp", "all", "experiment id (E1,E2,E3,E4,E6,E7,E8,E9,E10,E13) or 'all'")
	flagSeed    = flag.Int64("seed", 1, "simulation seed")
	flagLarge   = flag.Bool("large", false, "use larger size sweeps")
	flagWorkers = flag.Int("workers", 0, "engine worker count (0 = GOMAXPROCS, 1 = sequential)")
	flagJSON    = flag.String("json", "", "write machine-readable results to this path")
	flagCPU     = flag.String("cpuprofile", "", "write a CPU profile to this path")
	flagMem     = flag.String("memprofile", "", "write a heap profile to this path")
)

// simOpts returns the engine options for one run at the given seed.
func simOpts(seed int64) local.Options {
	return local.Options{Seed: seed, Workers: *flagWorkers}
}

// record is one measured simulation in the -json output; see EXPERIMENTS.md
// for the schema.
type record struct {
	Experiment string  `json:"experiment"`
	Label      string  `json:"label"`
	Algorithm  string  `json:"algorithm"`
	N          int     `json:"n"`
	Rounds     int     `json:"rounds"`
	Messages   int64   `json:"messages"`
	WallNs     int64   `json:"wall_ns"`
	Allocs     uint64  `json:"allocs"`
	Ratio      float64 `json:"ratio,omitempty"`
}

// collected accumulates the -json records of the whole invocation.
var collected []record

// currentExp is the experiment id being run, stamped into records.
var currentExp string

// measure runs one simulation, recording wall time and allocation count.
func measure(label string, g *graph.Graph, a local.Algorithm, seed int64) (*local.Result, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := local.Run(g, a, simOpts(seed))
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, err
	}
	collected = append(collected, record{
		Experiment: currentExp,
		Label:      label,
		Algorithm:  a.Name(),
		N:          g.N(),
		Rounds:     res.Rounds,
		Messages:   res.Messages,
		WallNs:     wall.Nanoseconds(),
		Allocs:     after.Mallocs - before.Mallocs,
	})
	return res, nil
}

func run() error {
	flag.Parse()
	if *flagCPU != "" {
		f, err := os.Create(*flagCPU)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	exps := map[string]func() error{
		"E1": e1, "E2": e2, "E3": e3, "E4": e4, "E6": e6,
		"E7": e7, "E8": e8, "E9": e9, "E10": e10, "E13": e13,
	}
	order := []string{"E1", "E2", "E3", "E4", "E6", "E7", "E8", "E9", "E10", "E13"}
	want := strings.ToUpper(*flagExp)
	ran := false
	for _, id := range order {
		if want != "ALL" && want != id {
			continue
		}
		currentExp = id
		if err := exps[id](); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *flagExp)
	}
	if *flagJSON != "" {
		if err := writeJSON(*flagJSON); err != nil {
			return err
		}
	}
	if *flagMem != "" {
		f, err := os.Create(*flagMem)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// writeJSON emits the collected records with a schema header.
func writeJSON(path string) error {
	doc := struct {
		SchemaVersion int      `json:"schema_version"`
		GeneratedBy   string   `json:"generated_by"`
		Seed          int64    `json:"seed"`
		Workers       int      `json:"workers"`
		Large         bool     `json:"large"`
		Results       []record `json:"results"`
	}{
		SchemaVersion: 1,
		GeneratedBy:   "cmd/localbench",
		Seed:          *flagSeed,
		Workers:       *flagWorkers,
		Large:         *flagLarge,
		Results:       collected,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func sizes(small []int, large []int) []int {
	if *flagLarge {
		return large
	}
	return small
}

// row runs baseline and uniform on one graph and prints a table row.
func row(label string, g *graph.Graph, baseline, uniform local.Algorithm, check func([]any) error) error {
	nu, err := measure(label+"/nonuniform", g, baseline, *flagSeed)
	if err != nil {
		return err
	}
	un, err := measure(label+"/uniform", g, uniform, *flagSeed)
	if err != nil {
		return err
	}
	if err := check(un.Outputs); err != nil {
		return fmt.Errorf("uniform output invalid on %s: %w", label, err)
	}
	collected[len(collected)-1].Ratio = float64(un.Rounds) / float64(nu.Rounds)
	fmt.Printf("| %s | %d | %d | %d | %.2f |\n",
		label, g.N(), nu.Rounds, un.Rounds, float64(un.Rounds)/float64(nu.Rounds))
	return nil
}

func header(title, caption string) {
	fmt.Printf("\n### %s\n\n%s\n\n", title, caption)
	fmt.Println("| graph | n | non-uniform rounds | uniform rounds | ratio |")
	fmt.Println("|---|---|---|---|---|")
}

func misCheck(g *graph.Graph) func([]any) error {
	return func(outputs []any) error {
		in, err := problems.Bools(outputs)
		if err != nil {
			return err
		}
		return problems.ValidMIS(g, in)
	}
}

func e1() error {
	header("E1 — Det. MIS / (Δ+1)-coloring, O(Δ + log* n) row (Theorem 1)",
		"colormis with correct {Δ, m} vs the Theorem 1 uniform transform (MIS pruner).")
	uniform := engines.UniformMISDelta()
	for _, n := range sizes([]int{256, 1024, 4096}, []int{1024, 4096, 16384}) {
		cyc, err := graph.Cycle(n)
		if err != nil {
			return err
		}
		reg, err := graph.RandomRegular(n, 4, int64(n))
		if err != nil {
			return err
		}
		gnp, err := graph.GNP(n, 8/float64(n-1), int64(n))
		if err != nil {
			return err
		}
		for _, fam := range []struct {
			name string
			g    *graph.Graph
		}{{"cycle", cyc}, {"regular4", reg}, {"gnp8", gnp}} {
			if err := row(fam.name, fam.g, engines.NonUniformMISDelta(fam.g), uniform, misCheck(fam.g)); err != nil {
				return err
			}
		}
	}
	return nil
}

func e2() error {
	header("E2 — Det. MIS with size-only knowledge (PS slot; greedy substitution)",
		"truncated greedy-by-identity with correct m vs its Theorem 1 uniform transform.")
	uniform := engines.UniformMISID()
	for _, n := range sizes([]int{64, 256, 1024}, []int{256, 1024, 8192}) {
		g, err := graph.GNP(n, 6/float64(n-1), int64(n))
		if err != nil {
			return err
		}
		if err := row("gnp6", g, engines.NonUniformMISID(g), uniform, misCheck(g)); err != nil {
			return err
		}
	}
	return nil
}

func e3() error {
	header("E3 — Det. MIS on bounded arboricity (Theorem 1, product bound; Theorem 3)",
		"H-partition MIS with correct {a, n, m} vs the uniform transform with the Obs 4.1 product set-sequence.")
	uniform := engines.UniformMISArb()
	for _, n := range sizes([]int{256, 1024}, []int{1024, 8192}) {
		for _, a := range []int{1, 3} {
			g := graph.ForestUnion(n, a, int64(n*a))
			if err := row(fmt.Sprintf("forest(a≤%d)", a), g, engines.NonUniformMISArb(g), uniform, misCheck(g)); err != nil {
				return err
			}
		}
	}
	return nil
}

func e4() error {
	header("E4 — λ(Δ+1)-coloring trade-off (Theorem 5)",
		"non-uniform λ-coloring with correct {Δ, m} vs the Theorem 5 uniform coloring; rounds fall as λ grows.")
	n := sizes([]int{512}, []int{2048})[0]
	g, err := graph.RandomRegular(n, 8, int64(n))
	if err != nil {
		return err
	}
	for _, lambda := range []int{1, 2, 4, 8} {
		uniform, err := engines.UniformLambdaColoring(lambda)
		if err != nil {
			return err
		}
		check := func(outputs []any) error {
			colors, err := problems.Ints(outputs)
			if err != nil {
				return err
			}
			return problems.ValidColoring(g, colors, 0)
		}
		if err := row(fmt.Sprintf("regular8, λ=%d", lambda), g,
			engines.NonUniformLambdaColoring(lambda)(g), uniform, check); err != nil {
			return err
		}
	}
	return nil
}

func e6() error {
	header("E6 — Maximal matching (Theorem 1 + P_MM)",
		"line-graph matching with correct {Δ, m} vs its uniform transform (HKP slot, see DESIGN.md §4).")
	uniform := engines.UniformMatching()
	for _, n := range sizes([]int{256, 1024}, []int{1024, 4096}) {
		g, err := graph.GNP(n, 5/float64(n-1), int64(n))
		if err != nil {
			return err
		}
		check := func(outputs []any) error { return problems.ValidMaximalMatching(g, outputs) }
		if err := row("gnp5", g, engines.NonUniformMatching(g), uniform, check); err != nil {
			return err
		}
	}
	return nil
}

func e7() error {
	header("E7 — Randomized (2,β)-ruling set (Theorem 2: Monte Carlo → Las Vegas)",
		"truncated power-graph Luby with correct n vs the uniform Las Vegas transform (P(2,β) pruner).")
	n := sizes([]int{512}, []int{2048})[0]
	g, err := graph.GNP(n, 8/float64(n-1), int64(n))
	if err != nil {
		return err
	}
	for _, beta := range []int{1, 2, 3} {
		uniform := engines.LasVegasRulingSet(beta)
		check := func(outputs []any) error {
			in, err := problems.Bools(outputs)
			if err != nil {
				return err
			}
			return problems.ValidRulingSet(g, in, 2, beta)
		}
		if err := row(fmt.Sprintf("gnp8, β=%d", beta), g,
			engines.NonUniformRulingSet(beta)(g), uniform, check); err != nil {
			return err
		}
	}
	return nil
}

func e8() error {
	fmt.Printf("\n### E8 — Rand. MIS, uniform O(log n) (Luby)\n\n")
	fmt.Println("| graph | n | rounds (avg over 5 seeds) | log2(n) |")
	fmt.Println("|---|---|---|---|")
	for _, n := range sizes([]int{1024, 4096, 16384}, []int{4096, 16384, 65536}) {
		g, err := graph.GNP(n, 8/float64(n-1), int64(n))
		if err != nil {
			return err
		}
		total := 0
		for seed := int64(0); seed < 5; seed++ {
			res, err := measure(fmt.Sprintf("gnp8/seed=%d", seed), g, luby.New(), seed)
			if err != nil {
				return err
			}
			if err := misCheck(g)(res.Outputs); err != nil {
				return err
			}
			total += res.Rounds
		}
		lg := 0
		for v := n; v > 1; v >>= 1 {
			lg++
		}
		fmt.Printf("| gnp8 | %d | %.1f | %d |\n", n, float64(total)/5, lg)
	}
	return nil
}

func e9() error {
	fmt.Printf("\n### E9 — Corollary 1(i): min of three engines (Theorem 4)\n\n")
	fmt.Println("| graph | n | Δ | best-MIS rounds | Δ-engine rounds | id-engine rounds | arb-engine rounds |")
	fmt.Println("|---|---|---|---|---|---|---|")
	combined := engines.BestMIS()
	cyc, err := graph.Cycle(sizes([]int{1024}, []int{4096})[0])
	if err != nil {
		return err
	}
	for _, fam := range []struct {
		name string
		g    *graph.Graph
	}{
		{"star", graph.Star(sizes([]int{1024}, []int{4096})[0])},
		{"clique", graph.Complete(sizes([]int{64}, []int{128})[0])},
		{"cycle", cyc},
	} {
		g := fam.g
		rounds := func(a local.Algorithm) (int, error) {
			res, err := measure(fam.name, g, a, *flagSeed)
			if err != nil {
				return 0, err
			}
			return res.Rounds, nil
		}
		best, err := rounds(combined)
		if err != nil {
			return err
		}
		rd, err := rounds(engines.NonUniformMISDelta(g))
		if err != nil {
			return err
		}
		ri, err := rounds(engines.NonUniformMISID(g))
		if err != nil {
			return err
		}
		ra, err := rounds(engines.NonUniformMISArb(g))
		if err != nil {
			return err
		}
		fmt.Printf("| %s | %d | %d | %d | %d | %d | %d |\n", fam.name, g.N(), g.MaxDegree(), best, rd, ri, ra)
	}
	return nil
}

func e10() error {
	fmt.Printf("\n### E10 — Section 5.1: uniform (deg+1)-coloring from uniform MIS\n\n")
	fmt.Println("| graph | n | rounds | max color | Δ+1 |")
	fmt.Println("|---|---|---|---|---|")
	uniform := engines.UniformDegPlusOneColoring(engines.LubyMIS())
	for _, n := range sizes([]int{256, 1024}, []int{1024, 4096}) {
		g, err := graph.GNP(n, 6/float64(n-1), int64(n))
		if err != nil {
			return err
		}
		res, err := measure("gnp6", g, uniform, *flagSeed)
		if err != nil {
			return err
		}
		colors, err := problems.Ints(res.Outputs)
		if err != nil {
			return err
		}
		if err := problems.ValidColoring(g, colors, g.MaxDegree()+1); err != nil {
			return err
		}
		fmt.Printf("| gnp6 | %d | %d | %d | %d |\n", n, res.Rounds, problems.MaxColor(colors), g.MaxDegree()+1)
	}
	return nil
}

func e13() error {
	fmt.Printf("\n### E13 — Observation 2.1: composition under skewed wake-up\n\n")
	fmt.Println("| graph | n | max delay | composed rounds | bound (delay + T_luby + slack) |")
	fmt.Println("|---|---|---|---|---|")
	n := sizes([]int{1024}, []int{4096})[0]
	g, err := graph.GNP(n, 6/float64(n-1), int64(n))
	if err != nil {
		return err
	}
	plain, err := measure("gnp6/plain", g, luby.New(), *flagSeed)
	if err != nil {
		return err
	}
	maxDelay := 16
	delayed := local.WithWakeup(luby.New(), func(id int64) int { return int(id % 17) })
	res, err := measure("gnp6/wakeup", g, delayed, *flagSeed)
	if err != nil {
		return err
	}
	fmt.Printf("| gnp6 | %d | %d | %d | %d |\n", n, maxDelay, res.Rounds, maxDelay+plain.Rounds+4)
	return nil
}
