// Command localbench regenerates the measured counterpart of every Table 1
// row and corollary of Korman–Sereni–Viennot as markdown tables: for each
// experiment it runs the non-uniform baseline with correct guesses and the
// uniform algorithm produced by the paper's transformers, and reports the
// round counts and their ratio. EXPERIMENTS.md is built from this output.
//
// Usage:
//
//	localbench [-exp all|E1|E2|E3|E4|E6|E7|E8|E9|E10|E13] [-seed N] [-large]
//	           [-parallel N] [-workers N] [-json path] [-corpus-dir dir]
//	           [-cpuprofile path] [-memprofile path]
//	localbench -scenarios dir [-exp name] [-seed N] [-parallel N]
//	           [-workers N] [-json path] [-corpus-dir dir] [...]
//	localbench -pgo default.pgo [-pgo-iters N] [-exp ...] [-seed N] [...]
//
// With -scenarios, the hard-coded experiment set is replaced by the
// declarative corpus in the given directory (see internal/scenario and the
// committed scenarios/): every *.json spec is validated, expanded into sweep
// jobs and rendered as one markdown section per scenario. -exp then filters
// scenarios by name instead of experiment id, and -seed shifts every
// scenario's seed grid (-seed 1, the default, runs the corpus exactly as
// committed). Scenario output contains only deterministic fields, so it is
// byte-identical for every -parallel and -workers value — CI's scenario gate
// diffs a sequential against a fully parallel run of the whole corpus.
//
// Otherwise execution is two-phase: every experiment plans its simulations as jobs,
// the whole batch runs through the internal/sweep scheduler (N whole
// simulations in flight with -parallel N; graphs come from a shared
// graph.Corpus so no family is generated twice), and the tables are rendered
// afterwards in plan order. Tables and the deterministic JSON fields are
// therefore byte-identical for every -parallel and -workers value; only the
// wall-clock changes.
//
// With -corpus-dir, the graph corpus is backed by the content-addressed CSR
// image store in that directory (the same format cmd/graphgen -store writes
// and localserved/localsweepd consume): graphs whose image exists load from
// disk instead of regenerating, and freshly generated graphs persist their
// image for the next run or replica. The output is byte-identical either
// way — the store only changes where the CSR bytes come from.
//
// With -json, a machine-readable result set (schema documented in
// EXPERIMENTS.md) is additionally written to the given path; the committed
// BENCH.json at the repo root tracks the perf trajectory across PRs and is
// guarded by cmd/benchguard in CI. In experiment mode the document includes
// the corpus cold/warm block: the largest committed family generated from
// scratch versus loaded from its CSR image (see internal/benchfmt
// .CorpusBench), measured in -corpus-dir when set or a throwaway store
// otherwise. The profile flags capture standard pprof profiles of the whole
// run, so hot-path regressions can be diagnosed without editing code.
//
// With -pgo, the planned experiment sweep is executed repeatedly under a CPU
// profile written to the given path — the representative workload profile
// committed as default.pgo next to each main package, which makes every
// plain `go build` profile-guided (see DESIGN.md §2.13 and `make pgo`).
// The mode exists to produce one artifact, the profile: tables and -json
// output are suppressed, and -cpuprofile is rejected (both flags would
// start the same profiler).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/unilocal/unilocal/internal/algorithms/luby"
	"github.com/unilocal/unilocal/internal/benchfmt"
	"github.com/unilocal/unilocal/internal/cliutil"
	"github.com/unilocal/unilocal/internal/engines"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
	"github.com/unilocal/unilocal/internal/problems"
	"github.com/unilocal/unilocal/internal/scenario"
	"github.com/unilocal/unilocal/internal/serve"
	"github.com/unilocal/unilocal/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "localbench:", err)
		os.Exit(1)
	}
}

var (
	flagExp      = flag.String("exp", "all", "experiment id (E1,E2,E3,E4,E6,E7,E8,E9,E10,E13) or 'all'; with -scenarios, a scenario name")
	flagScen     = flag.String("scenarios", "", "run the declarative scenario corpus in this directory instead of the built-in experiments")
	flagSeed     = flag.Int64("seed", 1, "simulation seed")
	flagLarge    = flag.Bool("large", false, "use larger size sweeps")
	flagParallel = flag.Int("parallel", 1, "simulations in flight (0 = GOMAXPROCS); output is byte-identical for any value")
	flagWorkers  = flag.Int("workers", 0, "engine worker count per simulation (0 = auto, 1 = sequential)")
	flagJSON     = flag.String("json", "", "write machine-readable results to this path")
	flagCorpus   = flag.String("corpus-dir", "", "content-addressed CSR image store directory backing the graph corpus (shared with graphgen -store and localserved -corpus-dir)")
	flagCPU      = flag.String("cpuprofile", "", "write a CPU profile to this path")
	flagMem      = flag.String("memprofile", "", "write a heap profile to this path")
	flagPGO      = flag.String("pgo", "", "run the experiment sweep repeatedly under a CPU profile and write it to this path (the default.pgo workflow); suppresses all other output")
	flagPGOIters = flag.Int("pgo-iters", 3, "sweep repetitions under -pgo (more = smoother profile)")
)

// recMeta is the planning-time half of a benchfmt.Record: everything known
// before the job runs, plus the baseline job whose rounds this job's ratio
// divides by.
type recMeta struct {
	exp     string
	label   string
	algo    string
	n       int
	ratioOf int // job index of the non-uniform baseline, or -1
}

// plan accumulates the jobs of all selected experiments and the deferred
// table renderers that consume their results. Planning, execution and
// rendering are strictly separated so the scheduler is free to complete jobs
// in any order while stdout and the JSON records keep the sequential
// ordering.
type plan struct {
	corpus  *graph.Corpus
	exp     string // experiment currently planning, stamped into jobs/renders
	jobs    []sweep.Job
	metas   []recMeta
	renders []render
	results []sweep.Result
}

type render struct {
	exp string
	fn  func() error
}

func newPlan() *plan {
	return &plan{corpus: graph.NewCorpus()}
}

// submit plans one simulation and returns its job index.
func (p *plan) submit(label string, g *graph.Graph, a local.Algorithm, seed int64) int {
	idx := len(p.jobs)
	p.jobs = append(p.jobs, sweep.Job{
		Label: p.exp + "/" + label,
		Graph: g,
		Algo:  func() local.Algorithm { return a },
		Seed:  seed,
	})
	p.metas = append(p.metas, recMeta{exp: p.exp, label: label, algo: a.Name(), n: g.N(), ratioOf: -1})
	return idx
}

// addRender defers output that depends on results.
func (p *plan) addRender(fn func() error) {
	p.renders = append(p.renders, render{exp: p.exp, fn: fn})
}

// res returns job i's simulation result or its error.
func (p *plan) res(i int) (*local.Result, error) {
	r := p.results[i]
	return r.Res, r.Err
}

// header plans a table header.
func (p *plan) header(title, caption string) {
	p.addRender(func() error {
		fmt.Printf("\n### %s\n\n%s\n\n", title, caption)
		fmt.Println("| graph | n | non-uniform rounds | uniform rounds | ratio |")
		fmt.Println("|---|---|---|---|---|")
		return nil
	})
}

// row plans the baseline/uniform pair of one table row and its rendering.
func (p *plan) row(label string, g *graph.Graph, baseline, uniform local.Algorithm, check func([]any) error) {
	nu := p.submit(label+"/nonuniform", g, baseline, *flagSeed)
	un := p.submit(label+"/uniform", g, uniform, *flagSeed)
	p.metas[un].ratioOf = nu
	p.addRender(func() error {
		nuRes, err := p.res(nu)
		if err != nil {
			return err
		}
		unRes, err := p.res(un)
		if err != nil {
			return err
		}
		if err := check(unRes.Outputs); err != nil {
			return fmt.Errorf("uniform output invalid on %s: %w", label, err)
		}
		fmt.Printf("| %s | %d | %d | %d | %.2f |\n",
			label, g.N(), nuRes.Rounds, unRes.Rounds, float64(unRes.Rounds)/float64(nuRes.Rounds))
		return nil
	})
}

func run() error {
	flag.Parse()
	if *flagCPU != "" {
		f, err := os.Create(*flagCPU)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *flagScen != "" {
		if err := runScenarios(); err != nil {
			return err
		}
		return writeMemProfile()
	}
	exps := map[string]func(*plan) error{
		"E1": e1, "E2": e2, "E3": e3, "E4": e4, "E6": e6,
		"E7": e7, "E8": e8, "E9": e9, "E10": e10, "E13": e13,
	}
	order := []string{"E1", "E2", "E3", "E4", "E6", "E7", "E8", "E9", "E10", "E13"}
	want := strings.ToUpper(*flagExp)
	p := newPlan()
	if *flagCorpus != "" {
		store, err := graph.OpenStore(*flagCorpus)
		if err != nil {
			return err
		}
		p.corpus.AttachStore(store)
	}
	ran := false
	for _, id := range order {
		if want != "ALL" && want != id {
			continue
		}
		p.exp = id
		if err := exps[id](p); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *flagExp)
	}

	if *flagPGO != "" {
		return runPGO(p)
	}

	results, stats := sweep.Run(p.jobs, sweep.Options{
		Parallel:      *flagParallel,
		EngineWorkers: *flagWorkers,
	})
	p.results = results
	for _, r := range p.renders {
		if err := r.fn(); err != nil {
			return fmt.Errorf("%s: %w", r.exp, err)
		}
	}

	if *flagJSON != "" {
		if err := writeJSON(*flagJSON, p, stats); err != nil {
			return err
		}
	}
	return writeMemProfile()
}

// runPGO executes the planned sweep -pgo-iters times under one CPU profile
// and writes it to the -pgo path. The sweep is the same job set BENCH.json
// measures — the engine's word scans, the lane traffic and the transformer
// wrappers in their real mix — so the profile steers PGO at the loops that
// matter. The first iteration warms the run-state pools; later iterations
// profile the steady state a long-lived server actually runs in.
func runPGO(p *plan) error {
	if *flagCPU != "" {
		return fmt.Errorf("-pgo and -cpuprofile both start the CPU profiler; use one")
	}
	iters := *flagPGOIters
	if iters < 1 {
		iters = 1
	}
	f, err := os.Create(*flagPGO)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		return err
	}
	defer pprof.StopCPUProfile()
	for i := 0; i < iters; i++ {
		results, _ := sweep.Run(p.jobs, sweep.Options{
			Parallel:      *flagParallel,
			EngineWorkers: *flagWorkers,
		})
		if err := sweep.FirstErr(results); err != nil {
			return fmt.Errorf("pgo sweep iteration %d: %w", i, err)
		}
	}
	return nil
}

// writeMemProfile honours -memprofile after a run (no-op when unset).
func writeMemProfile() error {
	if *flagMem == "" {
		return nil
	}
	f, err := os.Create(*flagMem)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// runScenarios executes the declarative corpus under -scenarios: load and
// validate the directory, optionally filter by -exp, then run through
// serve.Execute — the same request→document path cmd/localserved serves —
// and print the deterministic markdown (plus the JSON document under
// -json). Sharing the path is what makes a served response byte-identical
// to this command's output for the same spec.
func runScenarios() error {
	if err := cliutil.Dir("-scenarios", *flagScen); err != nil {
		return err
	}
	specs, err := scenario.LoadDir(*flagScen)
	if err != nil {
		return err
	}
	if want := strings.ToLower(*flagExp); want != "all" {
		var keep []*scenario.Spec
		for _, s := range specs {
			if s.Name == want {
				keep = append(keep, s)
			}
		}
		if len(keep) == 0 {
			return fmt.Errorf("no scenario named %q in %s", want, *flagScen)
		}
		specs = keep
	}
	corpus := graph.NewCorpus()
	if *flagCorpus != "" {
		store, err := graph.OpenStore(*flagCorpus)
		if err != nil {
			return err
		}
		corpus.AttachStore(store)
	}
	out, err := serve.Execute(specs, serve.ExecOptions{
		Corpus:        corpus,
		SeedOffset:    *flagSeed - 1,
		Parallel:      *flagParallel,
		EngineWorkers: *flagWorkers,
	})
	if err != nil {
		return err
	}
	if _, err := os.Stdout.Write(out.Markdown); err != nil {
		return err
	}
	if *flagJSON != "" {
		doc, err := scenario.Doc(out.Batch, out.Results, out.Stats, *flagSeed, *flagParallel, *flagWorkers)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*flagJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// writeJSON emits the per-job records (in plan order) with a schema header
// and the sweep throughput block; the types live in internal/benchfmt,
// shared with cmd/benchguard.
func writeJSON(path string, p *plan, stats sweep.Stats) error {
	collected := make([]benchfmt.Record, 0, len(p.metas))
	for i, m := range p.metas {
		r := p.results[i]
		if r.Err != nil {
			return r.Err
		}
		rec := benchfmt.Record{
			Experiment: m.exp,
			Label:      m.label,
			Algorithm:  m.algo,
			N:          m.n,
			Rounds:     r.Res.Rounds,
			Messages:   r.Res.Messages,
			WallNs:     r.Wall.Nanoseconds(),
			Allocs:     r.Allocs,
			Steps:      r.Res.Steps,
		}
		if m.ratioOf >= 0 {
			base := p.results[m.ratioOf]
			rec.Ratio = float64(r.Res.Rounds) / float64(base.Res.Rounds)
		}
		collected = append(collected, rec)
	}
	cb, err := corpusBench()
	if err != nil {
		return fmt.Errorf("corpus bench: %w", err)
	}
	doc := benchfmt.Doc{
		SchemaVersion: benchfmt.SchemaVersion,
		GeneratedBy:   "cmd/localbench",
		Seed:          *flagSeed,
		Parallel:      *flagParallel,
		Workers:       *flagWorkers,
		Large:         *flagLarge,
		Sweep: benchfmt.SweepStats{
			Jobs:         stats.Jobs,
			Workers:      stats.Workers,
			WallNs:       stats.Wall.Nanoseconds(),
			JobsPerSec:   stats.JobsPerSec,
			EngineAllocs: stats.EngineAllocs,
		},
		Corpus:  cb,
		Results: collected,
	}
	if stats.NodeSteps > 0 {
		doc.Instr = &benchfmt.InstrStats{
			NodeSteps:         stats.NodeSteps,
			StepsPerJob:       float64(stats.NodeSteps) / float64(stats.Jobs),
			NsPerStep:         float64(stats.Wall.Nanoseconds()) / float64(stats.NodeSteps),
			FrontierOccupancy: stats.FrontierOccupancy,
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// corpusBench measures the disk tier on the largest committed family (E8's
// gnp at n=16384): cold is a fresh generation through a store-less corpus,
// warm is a second corpus loading the CSR image a store-attached build
// persisted. The image lands in -corpus-dir when set (pre-warming the shared
// store as a side effect), otherwise in a throwaway directory. Family, n,
// edge count and image size are deterministic and guarded by benchguard; the
// wall times record the machine's cold/warm ratio.
func corpusBench() (*benchfmt.CorpusBench, error) {
	const n = 16384
	p, seed := 8/float64(n-1), int64(n)
	dir := *flagCorpus
	if dir == "" {
		tmp, err := os.MkdirTemp("", "localbench-corpus-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	store, err := graph.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	// Ensure the image exists: build once through the store (a pre-warmed
	// -corpus-dir makes this itself a disk hit).
	warmer := graph.NewCorpus()
	warmer.AttachStore(store)
	if _, err := warmer.GNP(n, p, seed); err != nil {
		return nil, err
	}

	start := time.Now()
	g, err := graph.NewCorpus().GNP(n, p, seed)
	if err != nil {
		return nil, err
	}
	coldNs := time.Since(start).Nanoseconds()

	loader := graph.NewCorpus()
	loader.AttachStore(store)
	start = time.Now()
	if _, err := loader.GNP(n, p, seed); err != nil {
		return nil, err
	}
	warmNs := time.Since(start).Nanoseconds()

	cb := &benchfmt.CorpusBench{
		Family: "gnp", N: n, Edges: g.NumEdges(),
		ColdNs: coldNs, WarmNs: warmNs,
	}
	if warmNs > 0 {
		cb.Speedup = float64(coldNs) / float64(warmNs)
	}
	images, err := store.Images()
	if err != nil {
		return nil, err
	}
	for _, img := range images {
		if img.Nodes == int64(n) && img.Edges == int64(cb.Edges) {
			cb.ImageBytes = img.Bytes
		}
	}
	return cb, nil
}

func sizes(small []int, large []int) []int {
	if *flagLarge {
		return large
	}
	return small
}

func misCheck(g *graph.Graph) func([]any) error {
	return func(outputs []any) error {
		in, err := problems.Bools(outputs)
		if err != nil {
			return err
		}
		return problems.ValidMIS(g, in)
	}
}

func e1(p *plan) error {
	p.header("E1 — Det. MIS / (Δ+1)-coloring, O(Δ + log* n) row (Theorem 1)",
		"colormis with correct {Δ, m} vs the Theorem 1 uniform transform (MIS pruner).")
	uniform := engines.UniformMISDelta()
	for _, n := range sizes([]int{256, 1024, 4096}, []int{1024, 4096, 16384}) {
		cyc, err := p.corpus.Cycle(n)
		if err != nil {
			return err
		}
		reg, err := p.corpus.RandomRegular(n, 4, int64(n))
		if err != nil {
			return err
		}
		gnp, err := p.corpus.GNP(n, 8/float64(n-1), int64(n))
		if err != nil {
			return err
		}
		for _, fam := range []struct {
			name string
			g    *graph.Graph
		}{{"cycle", cyc}, {"regular4", reg}, {"gnp8", gnp}} {
			p.row(fam.name, fam.g, engines.NonUniformMISDelta(engines.GraphParams(fam.g)), uniform, misCheck(fam.g))
		}
	}
	return nil
}

func e2(p *plan) error {
	p.header("E2 — Det. MIS with size-only knowledge (PS slot; greedy substitution)",
		"truncated greedy-by-identity with correct m vs its Theorem 1 uniform transform.")
	uniform := engines.UniformMISID()
	for _, n := range sizes([]int{64, 256, 1024}, []int{256, 1024, 8192}) {
		g, err := p.corpus.GNP(n, 6/float64(n-1), int64(n))
		if err != nil {
			return err
		}
		p.row("gnp6", g, engines.NonUniformMISID(engines.GraphParams(g)), uniform, misCheck(g))
	}
	return nil
}

func e3(p *plan) error {
	p.header("E3 — Det. MIS on bounded arboricity (Theorem 1, product bound; Theorem 3)",
		"H-partition MIS with correct {a, n, m} vs the uniform transform with the Obs 4.1 product set-sequence.")
	uniform := engines.UniformMISArb()
	for _, n := range sizes([]int{256, 1024}, []int{1024, 8192}) {
		for _, a := range []int{1, 3} {
			g := p.corpus.ForestUnion(n, a, int64(n*a))
			p.row(fmt.Sprintf("forest(a≤%d)", a), g, engines.NonUniformMISArb(engines.GraphParams(g)), uniform, misCheck(g))
		}
	}
	return nil
}

func e4(p *plan) error {
	p.header("E4 — λ(Δ+1)-coloring trade-off (Theorem 5)",
		"non-uniform λ-coloring with correct {Δ, m} vs the Theorem 5 uniform coloring; rounds fall as λ grows.")
	n := sizes([]int{512}, []int{2048})[0]
	g, err := p.corpus.RandomRegular(n, 8, int64(n))
	if err != nil {
		return err
	}
	for _, lambda := range []int{1, 2, 4, 8} {
		uniform, err := engines.UniformLambdaColoring(lambda)
		if err != nil {
			return err
		}
		check := func(outputs []any) error {
			colors, err := problems.Ints(outputs)
			if err != nil {
				return err
			}
			return problems.ValidColoring(g, colors, 0)
		}
		p.row(fmt.Sprintf("regular8, λ=%d", lambda), g,
			engines.NonUniformLambdaColoring(lambda)(engines.GraphParams(g)), uniform, check)
	}
	return nil
}

func e6(p *plan) error {
	p.header("E6 — Maximal matching (Theorem 1 + P_MM)",
		"line-graph matching with correct {Δ, m} vs its uniform transform (HKP slot, see DESIGN.md §4).")
	uniform := engines.UniformMatching()
	for _, n := range sizes([]int{256, 1024}, []int{1024, 4096}) {
		g, err := p.corpus.GNP(n, 5/float64(n-1), int64(n))
		if err != nil {
			return err
		}
		check := func(outputs []any) error { return problems.ValidMaximalMatching(g, outputs) }
		p.row("gnp5", g, engines.NonUniformMatching(engines.GraphParams(g)), uniform, check)
	}
	return nil
}

func e7(p *plan) error {
	p.header("E7 — Randomized (2,β)-ruling set (Theorem 2: Monte Carlo → Las Vegas)",
		"truncated power-graph Luby with correct n vs the uniform Las Vegas transform (P(2,β) pruner).")
	n := sizes([]int{512}, []int{2048})[0]
	g, err := p.corpus.GNP(n, 8/float64(n-1), int64(n))
	if err != nil {
		return err
	}
	for _, beta := range []int{1, 2, 3} {
		uniform := engines.LasVegasRulingSet(beta)
		check := func(outputs []any) error {
			in, err := problems.Bools(outputs)
			if err != nil {
				return err
			}
			return problems.ValidRulingSet(g, in, 2, beta)
		}
		p.row(fmt.Sprintf("gnp8, β=%d", beta), g,
			engines.NonUniformRulingSet(beta)(engines.GraphParams(g)), uniform, check)
	}
	return nil
}

func e8(p *plan) error {
	p.addRender(func() error {
		fmt.Printf("\n### E8 — Rand. MIS, uniform O(log n) (Luby)\n\n")
		fmt.Println("| graph | n | rounds (avg over 5 seeds) | log2(n) |")
		fmt.Println("|---|---|---|---|")
		return nil
	})
	for _, n := range sizes([]int{1024, 4096, 16384}, []int{4096, 16384, 65536}) {
		g, err := p.corpus.GNP(n, 8/float64(n-1), int64(n))
		if err != nil {
			return err
		}
		idxs := make([]int, 0, 5)
		for seed := int64(0); seed < 5; seed++ {
			idxs = append(idxs, p.submit(fmt.Sprintf("gnp8/seed=%d", seed), g, luby.New(), seed))
		}
		p.addRender(func() error {
			total := 0
			for _, i := range idxs {
				res, err := p.res(i)
				if err != nil {
					return err
				}
				if err := misCheck(g)(res.Outputs); err != nil {
					return err
				}
				total += res.Rounds
			}
			lg := 0
			for v := n; v > 1; v >>= 1 {
				lg++
			}
			fmt.Printf("| gnp8 | %d | %.1f | %d |\n", n, float64(total)/5, lg)
			return nil
		})
	}
	return nil
}

func e9(p *plan) error {
	p.addRender(func() error {
		fmt.Printf("\n### E9 — Corollary 1(i): min of three engines (Theorem 4)\n\n")
		fmt.Println("| graph | n | Δ | best-MIS rounds | Δ-engine rounds | id-engine rounds | arb-engine rounds |")
		fmt.Println("|---|---|---|---|---|---|---|")
		return nil
	})
	combined := engines.BestMIS()
	cyc, err := p.corpus.Cycle(sizes([]int{1024}, []int{4096})[0])
	if err != nil {
		return err
	}
	for _, fam := range []struct {
		name string
		g    *graph.Graph
	}{
		{"star", p.corpus.Star(sizes([]int{1024}, []int{4096})[0])},
		{"clique", p.corpus.Complete(sizes([]int{64}, []int{128})[0])},
		{"cycle", cyc},
	} {
		g := fam.g
		best := p.submit(fam.name, g, combined, *flagSeed)
		rd := p.submit(fam.name, g, engines.NonUniformMISDelta(engines.GraphParams(g)), *flagSeed)
		ri := p.submit(fam.name, g, engines.NonUniformMISID(engines.GraphParams(g)), *flagSeed)
		ra := p.submit(fam.name, g, engines.NonUniformMISArb(engines.GraphParams(g)), *flagSeed)
		p.addRender(func() error {
			rounds := make([]int, 4)
			for j, i := range []int{best, rd, ri, ra} {
				res, err := p.res(i)
				if err != nil {
					return err
				}
				rounds[j] = res.Rounds
			}
			fmt.Printf("| %s | %d | %d | %d | %d | %d | %d |\n",
				fam.name, g.N(), g.MaxDegree(), rounds[0], rounds[1], rounds[2], rounds[3])
			return nil
		})
	}
	return nil
}

func e10(p *plan) error {
	p.addRender(func() error {
		fmt.Printf("\n### E10 — Section 5.1: uniform (deg+1)-coloring from uniform MIS\n\n")
		fmt.Println("| graph | n | rounds | max color | Δ+1 |")
		fmt.Println("|---|---|---|---|---|")
		return nil
	})
	uniform := engines.UniformDegPlusOneColoring(engines.LubyMIS())
	for _, n := range sizes([]int{256, 1024}, []int{1024, 4096}) {
		g, err := p.corpus.GNP(n, 6/float64(n-1), int64(n))
		if err != nil {
			return err
		}
		idx := p.submit("gnp6", g, uniform, *flagSeed)
		p.addRender(func() error {
			res, err := p.res(idx)
			if err != nil {
				return err
			}
			colors, err := problems.Ints(res.Outputs)
			if err != nil {
				return err
			}
			if err := problems.ValidColoring(g, colors, g.MaxDegree()+1); err != nil {
				return err
			}
			fmt.Printf("| gnp6 | %d | %d | %d | %d |\n", n, res.Rounds, problems.MaxColor(colors), g.MaxDegree()+1)
			return nil
		})
	}
	return nil
}

func e13(p *plan) error {
	p.addRender(func() error {
		fmt.Printf("\n### E13 — Observation 2.1: composition under skewed wake-up\n\n")
		fmt.Println("| graph | n | max delay | composed rounds | bound (delay + T_luby + slack) |")
		fmt.Println("|---|---|---|---|---|")
		return nil
	})
	n := sizes([]int{1024}, []int{4096})[0]
	g, err := p.corpus.GNP(n, 6/float64(n-1), int64(n))
	if err != nil {
		return err
	}
	plainIdx := p.submit("gnp6/plain", g, luby.New(), *flagSeed)
	maxDelay := 16
	delayed := local.WithWakeup(luby.New(), func(id int64) int { return int(id % 17) })
	wakeIdx := p.submit("gnp6/wakeup", g, delayed, *flagSeed)
	p.addRender(func() error {
		plain, err := p.res(plainIdx)
		if err != nil {
			return err
		}
		res, err := p.res(wakeIdx)
		if err != nil {
			return err
		}
		fmt.Printf("| gnp6 | %d | %d | %d | %d |\n", n, maxDelay, res.Rounds, maxDelay+plain.Rounds+4)
		return nil
	})
	return nil
}
