package main

// End-to-end tests of the localsweepd entry point against in-process
// replicas: the merged document on stdout must be byte-identical to the
// single-process serve.Execute markdown for the same corpus and seed — the
// same identity CI's fabric-chaos job checks against real processes.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/unilocal/unilocal/internal/scenario"
	"github.com/unilocal/unilocal/internal/serve"
)

const (
	sweepSpecLuby = `{
  "name": "sweepd-luby",
  "description": "test corpus member",
  "graph": {"family": "cycle", "n": 96},
  "algorithm": {"name": "luby-mis"},
  "seeds": [1, 2, 3]
}`
	sweepSpecMIS = `{
  "name": "sweepd-mis",
  "description": "test corpus member",
  "graph": {"family": "gnp", "n": 64, "p": 0.08, "seed": 2},
  "algorithm": {"name": "uniform-mis-delta"},
  "baseline": {"name": "nonuniform-mis-delta"},
  "seeds": [1, 2]
}`
)

func writeCorpus(t *testing.T, specs ...string) string {
	t.Helper()
	dir := t.TempDir()
	for i, s := range specs {
		path := filepath.Join(dir, "spec"+string(rune('a'+i))+".json")
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func wantMarkdown(t *testing.T, dir string, seed int64, filter string) []byte {
	t.Helper()
	specs, err := scenario.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filter != "all" {
		var keep []*scenario.Spec
		for _, s := range specs {
			if s.Name == filter {
				keep = append(keep, s)
			}
		}
		specs = keep
	}
	out, err := serve.Execute(specs, serve.ExecOptions{SeedOffset: seed - 1})
	if err != nil {
		t.Fatal(err)
	}
	return out.Markdown
}

func TestSweepMatchesLocalbenchOutput(t *testing.T) {
	dir := writeCorpus(t, sweepSpecLuby, sweepSpecMIS)
	var endpoints []string
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(serve.New(serve.Config{}))
		defer ts.Close()
		endpoints = append(endpoints, ts.URL)
	}
	cfg := sweepConfig{
		Scenarios: dir,
		Endpoints: strings.Join(endpoints, ","),
		Exp:       "all",
		Seed:      1,
		Quiet:     true,
	}
	var stdout, stderr bytes.Buffer
	if err := sweep(context.Background(), cfg, &stdout, &stderr); err != nil {
		t.Fatalf("sweep: %v\nstderr: %s", err, stderr.String())
	}
	want := wantMarkdown(t, dir, 1, "all")
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("merged document differs from single-process output:\n--- got ---\n%s\n--- want ---\n%s", stdout.Bytes(), want)
	}
	if !strings.Contains(stderr.String(), "shard tasks over 2 replicas") {
		t.Fatalf("missing supervision summary: %s", stderr.String())
	}
}

func TestSweepExpFilterAndSeed(t *testing.T) {
	dir := writeCorpus(t, sweepSpecLuby, sweepSpecMIS)
	ts := httptest.NewServer(serve.New(serve.Config{}))
	defer ts.Close()
	cfg := sweepConfig{
		Scenarios: dir,
		Endpoints: ts.URL,
		Exp:       "sweepd-mis",
		Seed:      4,
		Shards:    3,
		Quiet:     true,
	}
	var stdout, stderr bytes.Buffer
	if err := sweep(context.Background(), cfg, &stdout, &stderr); err != nil {
		t.Fatalf("sweep: %v\nstderr: %s", err, stderr.String())
	}
	want := wantMarkdown(t, dir, 4, "sweepd-mis")
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("filtered document differs:\n--- got ---\n%s\n--- want ---\n%s", stdout.Bytes(), want)
	}
	if strings.Contains(stdout.String(), "sweepd-luby") {
		t.Fatal("-exp filter leaked the other scenario")
	}
}

func TestSweepFallbackOnlyNeedsNoReplicas(t *testing.T) {
	dir := writeCorpus(t, sweepSpecLuby)
	cfg := sweepConfig{
		Scenarios: dir,
		Exp:       "all",
		Seed:      1,
		Shards:    2,
		Fallback:  true,
		Quiet:     true,
	}
	var stdout, stderr bytes.Buffer
	if err := sweep(context.Background(), cfg, &stdout, &stderr); err != nil {
		t.Fatalf("fallback-only sweep: %v", err)
	}
	if want := wantMarkdown(t, dir, 1, "all"); !bytes.Equal(stdout.Bytes(), want) {
		t.Fatal("fallback-only document differs from single-process output")
	}
}

func TestSweepConfigErrors(t *testing.T) {
	dir := writeCorpus(t, sweepSpecLuby)
	cases := []struct {
		name string
		cfg  sweepConfig
		want string
	}{
		{"missing scenarios", sweepConfig{Endpoints: "http://x"}, "-scenarios: required"},
		{"bad endpoint", sweepConfig{Scenarios: dir, Endpoints: "ftp://x", Exp: "all"}, "http:// or https://"},
		{"negative shards", sweepConfig{Scenarios: dir, Endpoints: "http://127.0.0.1:1", Exp: "all", Shards: -1}, "-shards -1"},
		{"unknown scenario", sweepConfig{Scenarios: dir, Endpoints: "http://127.0.0.1:1", Exp: "nope"}, `no scenario named "nope"`},
		{"no endpoints no fallback", sweepConfig{Scenarios: dir, Exp: "all"}, "no endpoints and no fallback"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := sweep(context.Background(), tc.cfg, &stdout, &stderr)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestSweepStatusLine: -status appends one per-replica supervision summary
// line with breaker position and the attempt ledger.
func TestSweepStatusLine(t *testing.T) {
	dir := writeCorpus(t, sweepSpecLuby)
	ts := httptest.NewServer(serve.New(serve.Config{}))
	defer ts.Close()
	cfg := sweepConfig{
		Scenarios: dir,
		Endpoints: ts.URL,
		Exp:       "all",
		Seed:      1,
		Quiet:     true,
		Status:    true,
	}
	var stdout, stderr bytes.Buffer
	if err := sweep(context.Background(), cfg, &stdout, &stderr); err != nil {
		t.Fatalf("sweep: %v\nstderr: %s", err, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "localsweepd: status: retries 0/") {
		t.Fatalf("missing status line: %s", out)
	}
	if !strings.Contains(out, ts.URL+" breaker=closed fails=0 attempts=1 ok=1 err=0") {
		t.Fatalf("missing replica ledger: %s", out)
	}
}
