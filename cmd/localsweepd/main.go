// Command localsweepd is the distributed counterpart of
// cmd/localbench -scenarios: it shards the declarative scenario corpus
// across a fleet of localserved replicas through the fault-tolerant fabric
// coordinator (internal/fabric, DESIGN.md §2.9) and writes the merged
// markdown document to stdout — byte-identical to what localbench prints
// for the same corpus and seed in a single process, regardless of how many
// replicas answered, failed, were retried, hedged or fell back.
//
// Usage:
//
//	localsweepd -scenarios dir -endpoints url[,url...] [-exp name]
//	            [-seed N] [-shards N] [-max-attempts N] [-retry-budget N]
//	            [-backoff D] [-max-backoff D] [-timeout D] [-hedge D]
//	            [-fail-threshold N] [-probe-interval D] [-fallback=false]
//	            [-corpus-dir dir] [-quiet] [-status]
//
// Replica failures are survived, not reported as errors: a failed shard is
// retried on another replica with jittered exponential backoff, a replica
// that keeps failing is circuit-broken and probed via /healthz until it
// recovers, a straggling shard is hedged onto an idle replica after -hedge,
// and with -fallback (the default) shards run in-process when no replica
// can take them — so the sweep completes even with every endpoint dead.
// Supervision activity is summarized on stderr; only the merged document
// goes to stdout. Exit is non-zero for terminal errors: an invalid corpus,
// a replica rejecting the request itself (the spec is bad everywhere), an
// exhausted retry budget with -fallback=false, or interruption.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/unilocal/unilocal/internal/cliutil"
	"github.com/unilocal/unilocal/internal/fabric"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/scenario"
)

var (
	flagScen      = flag.String("scenarios", "", "scenario corpus directory (required)")
	flagEndpoints = flag.String("endpoints", "", "comma-separated replica base URLs (e.g. http://127.0.0.1:8080,http://127.0.0.1:8081)")
	flagExp       = flag.String("exp", "all", "run only the scenario with this name")
	flagSeed      = flag.Int64("seed", 1, "sweep seed, identical to localbench -seed")
	flagShards    = flag.Int("shards", 0, "shards per scenario (0 = one per endpoint, clamped to the job count)")
	flagAttempts  = flag.Int("max-attempts", 0, "replica attempts per shard before fallback or failure (0 = default)")
	flagBudget    = flag.Int("retry-budget", 0, "total retries across the sweep (0 = default)")
	flagBackoff   = flag.Duration("backoff", 0, "base retry backoff, doubled per attempt with deterministic jitter (0 = default)")
	flagMaxBack   = flag.Duration("max-backoff", 0, "backoff ceiling (0 = default)")
	flagTimeout   = flag.Duration("timeout", 0, "base per-attempt timeout, grown by the shard's estimated work (0 = default)")
	flagHedge     = flag.Duration("hedge", 0, "re-issue a shard to an idle replica after this long in flight (0 = no hedging)")
	flagThreshold = flag.Int("fail-threshold", 0, "consecutive failures that open a replica's circuit breaker (0 = default)")
	flagProbe     = flag.Duration("probe-interval", 0, "delay before an open breaker is probed via /healthz (0 = default)")
	flagFallback  = flag.Bool("fallback", true, "execute shards in-process when no replica can take them")
	flagCorpusDir = flag.String("corpus-dir", "", "content-addressed CSR image store directory backing in-process fallback execution (share it with the replicas' -corpus-dir)")
	flagQuiet     = flag.Bool("quiet", false, "suppress per-event supervision log lines on stderr")
	flagStatus    = flag.Bool("status", false, "print one per-replica supervision summary line on stderr at sweep end")
)

func main() {
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := sweep(ctx, fromFlags(), os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "localsweepd:", err)
		os.Exit(1)
	}
}

// sweepConfig carries the parsed flags, so tests can drive sweep directly.
type sweepConfig struct {
	Scenarios string
	Endpoints string
	Exp       string
	Seed      int64
	Shards    int

	MaxAttempts   int
	RetryBudget   int
	Backoff       time.Duration
	MaxBackoff    time.Duration
	Timeout       time.Duration
	Hedge         time.Duration
	FailThreshold int
	ProbeInterval time.Duration
	Fallback      bool
	CorpusDir     string
	Quiet         bool
	Status        bool
}

func fromFlags() sweepConfig {
	return sweepConfig{
		Scenarios:     *flagScen,
		Endpoints:     *flagEndpoints,
		Exp:           *flagExp,
		Seed:          *flagSeed,
		Shards:        *flagShards,
		MaxAttempts:   *flagAttempts,
		RetryBudget:   *flagBudget,
		Backoff:       *flagBackoff,
		MaxBackoff:    *flagMaxBack,
		Timeout:       *flagTimeout,
		Hedge:         *flagHedge,
		FailThreshold: *flagThreshold,
		ProbeInterval: *flagProbe,
		Fallback:      *flagFallback,
		CorpusDir:     *flagCorpusDir,
		Quiet:         *flagQuiet,
		Status:        *flagStatus,
	}
}

// sweep validates the configuration, loads and filters the corpus, runs the
// distributed sweep and writes the merged document to stdout plus a
// one-line supervision summary to stderr.
func sweep(ctx context.Context, cfg sweepConfig, stdout, stderr io.Writer) error {
	if err := cliutil.Dir("-scenarios", cfg.Scenarios); err != nil {
		return err
	}
	endpoints, err := cliutil.Endpoints("-endpoints", cfg.Endpoints)
	if err != nil {
		return err
	}
	if err := cliutil.NonNegative("-shards", cfg.Shards); err != nil {
		return err
	}
	specs, err := scenario.LoadDir(cfg.Scenarios)
	if err != nil {
		return err
	}
	// -exp filters by scenario name, with localbench -scenarios semantics.
	if want := strings.ToLower(cfg.Exp); want != "all" {
		var keep []*scenario.Spec
		for _, s := range specs {
			if s.Name == want {
				keep = append(keep, s)
			}
		}
		if len(keep) == 0 {
			return fmt.Errorf("no scenario named %q in %s", want, cfg.Scenarios)
		}
		specs = keep
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(stderr, "localsweepd: "+format+"\n", args...)
	}
	if cfg.Quiet {
		logf = nil
	}
	var store *graph.Store
	if cfg.CorpusDir != "" {
		store, err = graph.OpenStore(cfg.CorpusDir)
		if err != nil {
			return err
		}
	}
	c, err := fabric.New(fabric.Config{
		Endpoints:        endpoints,
		Shards:           cfg.Shards,
		Seed:             cfg.Seed,
		MaxAttempts:      cfg.MaxAttempts,
		RetryBudget:      cfg.RetryBudget,
		BaseBackoff:      cfg.Backoff,
		MaxBackoff:       cfg.MaxBackoff,
		BackoffSeed:      cfg.Seed,
		TimeoutBase:      cfg.Timeout,
		FailureThreshold: cfg.FailThreshold,
		ProbeInterval:    cfg.ProbeInterval,
		Hedge:            cfg.Hedge,
		Fallback:         cfg.Fallback,
		CorpusStore:      store,
		Logf:             logf,
	})
	if err != nil {
		return err
	}
	out, stats, err := c.Sweep(ctx, specs)
	if err != nil {
		return err
	}
	if _, err := stdout.Write(out); err != nil {
		return err
	}
	fmt.Fprintf(stderr,
		"localsweepd: %d scenarios, %d shard tasks over %d replicas: %d attempts, %d retries, %d hedges, %d fallbacks, %d probes, %d breaker opens\n",
		len(specs), stats.Tasks, len(endpoints), stats.Attempts, stats.Retries,
		stats.Hedges, stats.Fallbacks, stats.Probes, stats.BreakerOpens)
	if cfg.Status {
		writeStatus(stderr, stats)
	}
	return nil
}

// writeStatus prints the per-replica supervision summary -status asks for:
// each replica's breaker position, consecutive-failure count and attempt
// ledger, plus the sweep's retry spend against its budget.
func writeStatus(stderr io.Writer, stats fabric.Stats) {
	fmt.Fprintf(stderr, "localsweepd: status: retries %d/%d", stats.Retries, stats.RetryBudget)
	for _, rep := range stats.Replicas {
		fmt.Fprintf(stderr, " · %s breaker=%s fails=%d attempts=%d ok=%d err=%d",
			rep.URL, rep.Breaker, rep.ConsecutiveFails, rep.Attempts, rep.Successes, rep.Failures)
	}
	fmt.Fprintln(stderr)
}
