// Command localserved is the long-lived simulation service over the
// scenario/sweep stack (see internal/serve and DESIGN.md §2.8): clients POST
// one declarative scenario spec — the same strict JSON schema as a
// scenarios/ file — and receive the deterministic benchfmt/markdown
// document, byte-identical to cmd/localbench -scenarios output for the same
// spec at any parallelism.
//
// Usage:
//
//	localserved [-addr host:port] [-parallel N] [-workers N]
//	            [-corpus-limit N] [-corpus-dir dir] [-corpus-mem BYTES]
//	            [-cache N] [-max-inflight N] [-queue N]
//	            [-timeout D] [-drain-timeout D] [-fault exit-after=N]
//	            [-spool dir] [-job-workers N] [-job-shards N] [-job-rate F]
//	            [-job-burst N] [-job-max-per-client N]
//	            [-fault exit-after-shard=N]
//
// Endpoints:
//
//	POST /run?seed=N&format=md|json   execute one scenario spec
//	GET  /healthz                     200 serving / 503 draining
//	GET  /metrics                     JSON counters (jobs/sec, engine
//	                                  allocs, corpus + cache stats, gauges)
//
// With -spool the durable async job API (internal/job, DESIGN.md §2.10) is
// mounted as well:
//
//	POST   /jobs?seed=N               submit a spec; 202 + job ID at once
//	GET    /jobs                      list jobs + job-manager metrics
//	GET    /jobs/{id}                 one job's status
//	GET    /jobs/{id}/events          SSE per-slot/per-shard progress stream
//	GET    /jobs/{id}/result?format=  stored document once done (md | json)
//	DELETE /jobs/{id}                 cancel
//
// Jobs are journaled to the spool before they are acknowledged and
// checkpointed at shard boundaries, so killing the process — even with
// SIGKILL — loses at most the shard in flight: on restart with the same
// -spool the journal replays, unfinished jobs resume from their last
// checkpoint, and the recovered documents are byte-identical to an
// uninterrupted run (CI's job-durability gate asserts exactly this).
//
// With -corpus-dir the graph corpus is backed by a content-addressed on-disk
// store of built CSR images (DESIGN.md §2.11): a replica fleet sharing the
// directory builds each (family, params, seed) graph once — every other
// replica mmaps the image instead of regenerating — and a restarted process
// warm-starts from disk. -corpus-mem bounds the corpus's in-heap graph
// bytes; with a store attached, evicted graphs reload from disk, so a small
// budget serves graphs far larger than itself. /metrics gains disk-tier
// counters (disk hits/misses, images written, bytes mapped). Documents are
// byte-identical whether a graph came from memory, disk, or fresh
// generation.
//
// On SIGTERM/SIGINT the server drains gracefully: /healthz flips to 503, new
// runs and submissions are refused, running jobs checkpoint at their next
// shard boundary, open SSE streams flush a terminal drained event, requests
// already admitted finish (up to -drain-timeout), then the process exits 0.
// CI's server smoke job exercises exactly this lifecycle.
//
// -fault is the chaos-testing escape hatch: exit-after=N dies (exit 3, no
// response) the moment the Nth /run request arrives, simulating a replica
// crash mid-sweep at a deterministic point (CI's fabric-chaos job);
// exit-after-shard=N dies the moment the job subsystem journals its Nth
// shard checkpoint, simulating a crash mid-execution at a deterministic
// resume boundary (CI's job-durability gate).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/unilocal/unilocal/internal/cliutil"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/job"
	"github.com/unilocal/unilocal/internal/serve"
)

var (
	flagAddr        = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free one)")
	flagParallel    = flag.Int("parallel", 0, "simulations in flight per request (0 = GOMAXPROCS); responses are byte-identical for any value")
	flagWorkers     = flag.Int("workers", 0, "engine worker count per simulation (0 = auto)")
	flagCorpus      = flag.Int("corpus-limit", serve.DefaultCorpusLimit, "max cached graphs, LRU-evicted (<0 = unbounded)")
	flagCorpusDir   = flag.String("corpus-dir", "", "content-addressed CSR image store directory; replicas sharing it build each graph once and restarts warm-start from disk")
	flagCorpusMem   = flag.Int64("corpus-mem", 0, "max estimated in-heap graph bytes in the corpus, LRU-evicted (0 = unbounded); with -corpus-dir, evicted graphs reload from disk")
	flagCache       = flag.Int("cache", serve.DefaultCacheSize, "max cached responses (<0 = disable)")
	flagInFlight    = flag.Int("max-inflight", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
	flagQueue       = flag.Int("queue", serve.DefaultQueueDepth, "max requests waiting for a slot before 429 (<0 = none)")
	flagTimeout     = flag.Duration("timeout", 0, "per-request execution deadline (0 = none)")
	flagDrain       = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	flagMaxBodySize = flag.Int64("max-body", serve.DefaultMaxBodyBytes, "max request body bytes")
	flagMaxNodes    = flag.Int("max-nodes", serve.DefaultMaxNodes, "max estimated graph nodes per request (<0 = unbounded)")
	flagMaxEdges    = flag.Int("max-edges", serve.DefaultMaxEdges, "max estimated graph edges per request (<0 = unbounded)")
	flagMaxJobs     = flag.Int("max-jobs", serve.DefaultMaxJobs, "max expanded jobs per request (<0 = unbounded)")
	flagFault       = flag.String("fault", "", "chaos-test fault mode: exit-after=N crashes the process (exit 3) on the Nth /run request, before responding; exit-after-shard=N crashes on the Nth journaled job shard checkpoint")

	flagSpool        = flag.String("spool", "", "job spool directory; enables the durable async job API at /jobs")
	flagJobWorkers   = flag.Int("job-workers", 0, "concurrent async job executions (0 = default)")
	flagJobShards    = flag.Int("job-shards", 0, "shard checkpoints per job — the crash-resume granularity (0 = default, <0 = one)")
	flagJobRate      = flag.Float64("job-rate", 0, "per-client job submissions per second (0 = default, <0 = unlimited)")
	flagJobBurst     = flag.Int("job-burst", 0, "per-client submission burst size (0 = default)")
	flagJobPerClient = flag.Int("job-max-per-client", 0, "max queued+running jobs per client (0 = default, <0 = unbounded)")
)

func main() {
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, *flagAddr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "localserved:", err)
		os.Exit(1)
	}
}

// run serves until ctx is canceled, then drains. When ready is non-nil the
// bound address is sent on it once the listener is up (tests bind port 0).
func run(ctx context.Context, addr string, ready chan<- string) error {
	var store *graph.Store
	if *flagCorpusDir != "" {
		var err error
		store, err = graph.OpenStore(*flagCorpusDir)
		if err != nil {
			return fmt.Errorf("opening corpus store: %w", err)
		}
		fmt.Fprintf(os.Stderr, "localserved: corpus store at %s\n", *flagCorpusDir)
	}
	s := serve.New(serve.Config{
		Parallel:       *flagParallel,
		EngineWorkers:  *flagWorkers,
		CorpusLimit:    *flagCorpus,
		CorpusStore:    store,
		CorpusMemBytes: *flagCorpusMem,
		CacheSize:      *flagCache,
		MaxInFlight:    *flagInFlight,
		QueueDepth:     *flagQueue,
		Timeout:        *flagTimeout,
		MaxBodyBytes:   *flagMaxBodySize,
		MaxNodes:       *flagMaxNodes,
		MaxEdges:       *flagMaxEdges,
		MaxJobs:        *flagMaxJobs,
	})
	fault, shardFault, err := splitFault(*flagFault)
	if err != nil {
		return err
	}

	var base http.Handler = s
	var jobs *job.Manager
	if *flagSpool != "" {
		jobs, err = job.New(job.Config{
			Dir:          *flagSpool,
			Exec:         s.ShardExecutor(),
			Terminal:     serve.TerminalError,
			CheckSpec:    s.CheckSpec,
			Workers:      *flagJobWorkers,
			ShardsPerJob: *flagJobShards,
			Rate:         *flagJobRate,
			Burst:        *flagJobBurst,
			MaxPerClient: *flagJobPerClient,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "localserved: "+format+"\n", args...)
			},
			CrashAfterShards: shardFault,
			Crash: func() {
				crash(fmt.Sprintf("exit-after-shard=%d tripped", shardFault))
			},
		})
		if err != nil {
			return fmt.Errorf("opening spool: %w", err)
		}
		api := job.NewAPI(jobs, s.Draining)
		mux := http.NewServeMux()
		mux.Handle("/jobs", api)
		mux.Handle("/jobs/", api)
		mux.Handle("/", s)
		base = mux
		fmt.Fprintf(os.Stderr, "localserved: job spool at %s\n", *flagSpool)
	} else if shardFault > 0 {
		return errors.New("-fault exit-after-shard requires -spool")
	}
	handler, err := faultWrap(fault, base)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "localserved: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{Handler: handler}
	shutdownDone := make(chan error, 1)
	go func() {
		<-ctx.Done()
		// Drain: stop advertising health, refuse new runs and submissions,
		// checkpoint running jobs at their next shard boundary and flush
		// drained events to open SSE streams, then let admitted requests
		// finish within the grace period. The job drain runs first — its
		// drained events are what lets Shutdown's wait for open event
		// streams terminate.
		s.SetDraining(true)
		fmt.Fprintln(os.Stderr, "localserved: draining")
		drainCtx, cancel := context.WithTimeout(context.Background(), *flagDrain)
		defer cancel()
		if jobs != nil {
			if err := jobs.Drain(drainCtx); err != nil {
				fmt.Fprintf(os.Stderr, "localserved: job drain: %v\n", err)
			}
		}
		shutdownDone <- httpSrv.Shutdown(drainCtx)
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if ctx.Err() == nil {
		// Serve returned without a drain being requested.
		return errors.New("listener closed unexpectedly")
	}
	if err := <-shutdownDone; err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "localserved: drained")
	return nil
}

// crash is how a tripped -fault terminates the process; a variable so tests
// can observe the trip without dying.
var crash = func(reason string) {
	fmt.Fprintf(os.Stderr, "localserved: fault injected: %s\n", reason)
	os.Exit(3)
}

// splitFault separates the -fault value into the HTTP request-count mode
// (handled by faultWrap) and the job shard-checkpoint mode (handled by the
// job manager's crash hook). The two modes are mutually exclusive — one
// -fault flag, one fault.
func splitFault(mode string) (httpMode string, shardFault int, err error) {
	val, ok := strings.CutPrefix(mode, "exit-after-shard=")
	if !ok {
		return mode, 0, nil
	}
	n, err := strconv.Atoi(val)
	if err != nil {
		return "", 0, fmt.Errorf("-fault %q: %w", mode, err)
	}
	if err := cliutil.Positive("-fault exit-after-shard", n); err != nil {
		return "", 0, err
	}
	return "", n, nil
}

// faultWrap applies the -fault chaos mode to the server handler. The only
// mode, exit-after=N, kills the process the moment the Nth /run request
// arrives — before any response bytes — so the client sees the connection
// die mid-request, exactly what a crashed replica looks like to the fabric
// coordinator. CI's fabric-chaos job uses it to kill a replica mid-sweep at
// a deterministic point instead of racing a signal against the sweep.
func faultWrap(mode string, inner http.Handler) (http.Handler, error) {
	if mode == "" {
		return inner, nil
	}
	val, ok := strings.CutPrefix(mode, "exit-after=")
	if !ok {
		return nil, fmt.Errorf("-fault %q: unknown mode (want exit-after=N)", mode)
	}
	n, err := strconv.Atoi(val)
	if err != nil {
		return nil, fmt.Errorf("-fault %q: %w", mode, err)
	}
	if err := cliutil.Positive("-fault exit-after", n); err != nil {
		return nil, err
	}
	var runs atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/run" && runs.Add(1) == int64(n) {
			crash(fmt.Sprintf("exit-after=%d tripped", n))
			return // only reached when tests stub out crash
		}
		inner.ServeHTTP(w, r)
	}), nil
}
