package main

// Smoke test for the localserved binary lifecycle: bind, serve /healthz,
// execute one request, report metrics, drain cleanly on context
// cancellation (the SIGTERM path).

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const smokeSpec = `{
  "name": "smoke-luby",
  "graph": {"family": "cycle", "n": 64},
  "algorithm": {"name": "luby-mis"},
  "seeds": [1]
}`

func TestServerLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, "127.0.0.1:0", ready) }()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Post(base+"/run", "application/json", strings.NewReader(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/run = %d: %s", resp.StatusCode, body)
	}
	for _, want := range []string{"### smoke-luby", "| luby-mis | uniform | 1 | 0 |"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("response missing %q:\n%s", want, body)
		}
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(metrics), "\"responses_ok\": 1") {
		t.Fatalf("metrics = %d: %s", resp.StatusCode, metrics)
	}

	// The SIGTERM path: cancel the context and require a clean drain.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server failed to drain")
	}
}

func TestFaultWrapParsing(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if h, err := faultWrap("", inner); err != nil || h == nil {
		t.Fatalf("empty mode: %v", err)
	}
	for _, bad := range []string{"exit-after=0", "exit-after=-1", "exit-after=x", "kill-after=3", "exit-after="} {
		if _, err := faultWrap(bad, inner); err == nil {
			t.Fatalf("-fault %q accepted", bad)
		}
	}
}

// TestFaultWrapTripsOnNthRun stubs the crash hook and checks the trigger
// fires exactly on the Nth /run request, passes other paths through, and
// sends no response bytes on the tripped request (the client must see a
// dead connection, not a clean error).
func TestFaultWrapTripsOnNthRun(t *testing.T) {
	tripped := 0
	orig := crash
	crash = func(string) { tripped++ }
	defer func() { crash = orig }()

	var handled int
	h, err := faultWrap("exit-after=2", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handled++
		w.WriteHeader(http.StatusOK)
	}))
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, nil))
		return rec
	}
	get("/healthz") // non-/run traffic never counts
	get("/run")
	if tripped != 0 {
		t.Fatalf("tripped after first /run")
	}
	rec := get("/run")
	if tripped != 1 {
		t.Fatalf("second /run should trip: tripped=%d", tripped)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("tripped request wrote a body: %q", rec.Body)
	}
	get("/run")
	if tripped != 1 || handled != 3 {
		t.Fatalf("trigger should fire exactly once (tripped=%d handled=%d)", tripped, handled)
	}
}
