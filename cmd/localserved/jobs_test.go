package main

// Lifecycle tests for the durable async job API as mounted by the binary:
// submit over HTTP, drain on SIGTERM, restart on the same spool, coalesce
// the duplicate; plus -fault splitting between the HTTP and shard modes.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServer runs the binary's run() with the given spool dir and returns
// the base URL plus a shutdown func that drains and waits.
func startServer(t *testing.T, spool string) (string, func()) {
	t.Helper()
	origSpool := *flagSpool
	*flagSpool = spool
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, "127.0.0.1:0", ready) }()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		*flagSpool = origSpool
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		*flagSpool = origSpool
		t.Fatal("server never became ready")
	}
	return base, func() {
		defer func() { *flagSpool = origSpool }()
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("drain failed: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("server failed to drain")
		}
	}
}

type submitResponse struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Coalesced bool   `json:"coalesced"`
}

func TestJobLifecycleAcrossRestart(t *testing.T) {
	spool := t.TempDir()
	base, shutdown := startServer(t, spool)

	// The synchronous path still answers, for the byte-identity check below.
	resp, err := http.Post(base+"/run", "application/json", strings.NewReader(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	runBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/run = %d: %s", resp.StatusCode, runBody)
	}

	resp, err = http.Post(base+"/jobs", "application/json", strings.NewReader(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.Coalesced || sub.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, sub)
	}

	// Poll to done, then the stored markdown must equal the synchronous
	// response byte-for-byte.
	waitDone(t, base, sub.ID)
	resp, err = http.Get(base + "/jobs/" + sub.ID + "/result?format=md")
	if err != nil {
		t.Fatal(err)
	}
	jobBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", resp.StatusCode, jobBody)
	}
	if string(jobBody) != string(runBody) {
		t.Fatalf("async result diverges from synchronous /run:\n got: %s\nwant: %s", jobBody, runBody)
	}
	shutdown()

	// Restart on the same spool: the duplicate coalesces onto the stored
	// result without re-executing.
	base, shutdown = startServer(t, spool)
	defer shutdown()
	resp, err = http.Post(base+"/jobs", "application/json", strings.NewReader(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !sub.Coalesced || sub.State != "done" {
		t.Fatalf("restart duplicate: %d %+v", resp.StatusCode, sub)
	}
	resp, err = http.Get(base + "/jobs/" + sub.ID + "/result?format=md")
	if err != nil {
		t.Fatal(err)
	}
	recovered, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(recovered) != string(runBody) {
		t.Fatalf("recovered result diverges:\n got: %s\nwant: %s", recovered, runBody)
	}
}

func waitDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st submitResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("job %s reached %q", id, st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSplitFault(t *testing.T) {
	for _, tc := range []struct {
		mode     string
		httpMode string
		shard    int
		wantErr  bool
	}{
		{"", "", 0, false},
		{"exit-after=3", "exit-after=3", 0, false},
		{"exit-after-shard=2", "", 2, false},
		{"exit-after-shard=0", "", 0, true},
		{"exit-after-shard=-1", "", 0, true},
		{"exit-after-shard=x", "", 0, true},
	} {
		httpMode, shard, err := splitFault(tc.mode)
		if tc.wantErr {
			if err == nil {
				t.Errorf("splitFault(%q) accepted", tc.mode)
			}
			continue
		}
		if err != nil || httpMode != tc.httpMode || shard != tc.shard {
			t.Errorf("splitFault(%q) = %q, %d, %v; want %q, %d", tc.mode, httpMode, shard, err, tc.httpMode, tc.shard)
		}
	}
}

// TestShardFaultRequiresSpool: exit-after-shard without a spool is a
// configuration error, not a silently ignored fault.
func TestShardFaultRequiresSpool(t *testing.T) {
	origFault, origSpool := *flagFault, *flagSpool
	*flagFault, *flagSpool = "exit-after-shard=1", ""
	defer func() { *flagFault, *flagSpool = origFault, origSpool }()
	err := run(context.Background(), "127.0.0.1:0", nil)
	if err == nil || !strings.Contains(err.Error(), "requires -spool") {
		t.Fatalf("run without spool: %v", err)
	}
}
