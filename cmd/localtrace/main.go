// Command localtrace renders the Figure 1 view of the paper: the cascade
// of an alternating algorithm. It runs a uniform transformed algorithm,
// groups node terminations by round (each distinct termination round is the
// announce round of one pruning phase), and prints how the surviving
// configuration (G_i, x_i) shrinks from iteration to iteration.
//
// Usage:
//
//	localtrace [-algo lasvegas-mis|uniform-mis|uniform-matching] [-n N] [-deg D]
//	           [-seed S] [-max-rounds R]
//
// With -max-rounds, the algorithm is truncated at R rounds in the paper's
// "restricted to i rounds" sense (every live node is forced to terminate
// with its tentative output); nodes that did not genuinely halt by then are
// counted explicitly as a never-halted row in the cascade table instead of
// being silently folded into the surviving column.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/unilocal/unilocal/internal/cliutil"
	"github.com/unilocal/unilocal/internal/engines"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
)

var (
	flagAlgo      = flag.String("algo", "lasvegas-mis", "algorithm: lasvegas-mis, uniform-mis, uniform-matching")
	flagN         = flag.Int("n", 2048, "number of nodes (>= 1)")
	flagDeg       = flag.Float64("deg", 8, "average degree of the G(n,p) instance (0 <= deg <= n-1)")
	flagSeed      = flag.Int64("seed", 1, "simulation seed")
	flagMaxRounds = flag.Int("max-rounds", 0, "truncate the run at this many rounds (0 = run to termination)")
)

func main() {
	flag.Parse()
	cfg := traceConfig{
		Algo:      *flagAlgo,
		N:         *flagN,
		Deg:       *flagDeg,
		Seed:      *flagSeed,
		MaxRounds: *flagMaxRounds,
	}
	if err := trace(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "localtrace:", err)
		os.Exit(1)
	}
}

// traceConfig carries the parsed flags, so tests can drive trace directly.
type traceConfig struct {
	Algo      string
	N         int
	Deg       float64
	Seed      int64
	MaxRounds int
}

// validate rejects parameter combinations before they can turn into a
// nonsensical G(n,p): n = 1 with a positive degree used to divide by zero
// and ask GNP for p = +Inf. The checks live in internal/cliutil, shared
// with the other commands that take n/degree/bound flags.
func (c traceConfig) validate() error {
	if err := cliutil.Nodes("-n", c.N); err != nil {
		return err
	}
	if err := cliutil.AvgDegree("-deg", c.N, c.Deg); err != nil {
		return err
	}
	return cliutil.NonNegative("-max-rounds", c.MaxRounds)
}

// p is the G(n,p) edge probability realizing the requested average degree.
func (c traceConfig) p() float64 {
	return cliutil.GNPProb(c.N, c.Deg) // validate guarantees Deg == 0 when N <= 1
}

func trace(cfg traceConfig, w io.Writer) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	var algo local.Algorithm
	switch cfg.Algo {
	case "lasvegas-mis":
		algo = engines.LasVegasMIS()
	case "uniform-mis":
		algo = engines.UniformMISDelta()
	case "uniform-matching":
		algo = engines.UniformMatching()
	default:
		return fmt.Errorf("unknown algorithm %q", cfg.Algo)
	}
	g, err := graph.GNP(cfg.N, cfg.p(), cfg.Seed)
	if err != nil {
		return err
	}
	// -max-rounds is the paper's "A restricted to i rounds", with forced
	// halts marked so they can be counted apart from genuine terminations.
	run := algo
	if cfg.MaxRounds > 0 {
		run = local.RestrictRoundsMarked(algo, cfg.MaxRounds)
	}
	res, err := local.Run(g, run, local.Options{Seed: cfg.Seed})
	if err != nil {
		return fmt.Errorf("running %s on G(n=%d, p=%.4g): %w", algo.Name(), cfg.N, cfg.p(), err)
	}

	// Group genuine terminations by round: each group is one pruning phase
	// W_s of the alternating schedule (Figure 1 of the paper). Nodes the
	// -max-rounds truncation force-halted never genuinely terminated; they
	// are counted apart, not smuggled into a pruning phase.
	byRound := map[int]int{}
	neverHalted := 0
	for u, h := range res.HaltRounds {
		if _, forced := res.Outputs[u].(local.Truncated); forced {
			neverHalted++
			continue
		}
		byRound[h]++
	}
	rounds := make([]int, 0, len(byRound))
	for r := range byRound {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)

	fmt.Fprintf(w, "alternating cascade of %s on G(n=%d, avg deg %.1f), seed %d\n",
		algo.Name(), cfg.N, cfg.Deg, cfg.Seed)
	fmt.Fprintf(w, "total running time: %d rounds, %d messages\n\n", res.Rounds, res.Messages)
	fmt.Fprintln(w, "iteration | announce round | pruned |V(G_i)| remaining | cascade")
	surviving := g.N()
	for i, r := range rounds {
		pruned := byRound[r]
		surviving -= pruned
		bar := strings.Repeat("#", scale(surviving+pruned, g.N(), 60))
		fmt.Fprintf(w, "%9d | %14d | %6d | %9d | %s\n", i+1, r, pruned, surviving, bar)
	}
	if neverHalted > 0 {
		fmt.Fprintf(w, "%9s | %14s | %6s | %9d | never halted within %d rounds\n",
			"—", "—", "—", neverHalted, cfg.MaxRounds)
	}
	return nil
}

// scale maps v in [0,max] to a bar width in [0,width].
func scale(v, max, width int) int {
	if max == 0 {
		return 0
	}
	return v * width / max
}
