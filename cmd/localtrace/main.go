// Command localtrace renders the Figure 1 view of the paper: the cascade
// of an alternating algorithm. It runs a uniform transformed algorithm,
// groups node terminations by round (each distinct termination round is the
// announce round of one pruning phase), and prints how the surviving
// configuration (G_i, x_i) shrinks from iteration to iteration.
//
// Usage:
//
//	localtrace [-algo lasvegas-mis|uniform-mis|uniform-matching] [-n N] [-deg D] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/unilocal/unilocal/internal/engines"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/local"
)

var (
	flagAlgo = flag.String("algo", "lasvegas-mis", "algorithm: lasvegas-mis, uniform-mis, uniform-matching")
	flagN    = flag.Int("n", 2048, "number of nodes")
	flagDeg  = flag.Float64("deg", 8, "average degree of the G(n,p) instance")
	flagSeed = flag.Int64("seed", 1, "simulation seed")
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "localtrace:", err)
		os.Exit(1)
	}
}

func run() error {
	flag.Parse()
	var algo local.Algorithm
	switch *flagAlgo {
	case "lasvegas-mis":
		algo = engines.LasVegasMIS()
	case "uniform-mis":
		algo = engines.UniformMISDelta()
	case "uniform-matching":
		algo = engines.UniformMatching()
	default:
		return fmt.Errorf("unknown algorithm %q", *flagAlgo)
	}
	g, err := graph.GNP(*flagN, *flagDeg/float64(*flagN-1), *flagSeed)
	if err != nil {
		return err
	}
	res, err := local.Run(g, algo, local.Options{Seed: *flagSeed})
	if err != nil {
		return err
	}

	// Group terminations by round: each group is one pruning phase W_s of
	// the alternating schedule (Figure 1 of the paper).
	byRound := map[int]int{}
	for _, h := range res.HaltRounds {
		byRound[h]++
	}
	rounds := make([]int, 0, len(byRound))
	for r := range byRound {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)

	fmt.Printf("alternating cascade of %s on G(n=%d, avg deg %.1f), seed %d\n",
		algo.Name(), *flagN, *flagDeg, *flagSeed)
	fmt.Printf("total running time: %d rounds, %d messages\n\n", res.Rounds, res.Messages)
	fmt.Println("iteration | announce round | pruned |V(G_i)| remaining | cascade")
	surviving := g.N()
	for i, r := range rounds {
		pruned := byRound[r]
		surviving -= pruned
		bar := strings.Repeat("#", scale(surviving+pruned, g.N(), 60))
		fmt.Printf("%9d | %14d | %6d | %9d | %s\n", i+1, r, pruned, surviving, bar)
	}
	return nil
}

// scale maps v in [0,max] to a bar width in [0,width].
func scale(v, max, width int) int {
	if max == 0 {
		return 0
	}
	return v * width / max
}
