package main

// Table-driven smoke tests for the trace command, including the -n 1
// regression (the flag combination that used to ask GNP for p = +Inf) and
// the explicit never-halted accounting under -max-rounds.

import (
	"fmt"
	"strings"
	"testing"
)

func TestTraceValidationAndOutput(t *testing.T) {
	tests := []struct {
		name    string
		cfg     traceConfig
		wantErr string // substring of the expected error, "" for success
		want    []string
	}{
		{
			name:    "n=1 with positive degree is rejected, not +Inf",
			cfg:     traceConfig{Algo: "lasvegas-mis", N: 1, Deg: 8, Seed: 1},
			wantErr: "average degree at most 0",
		},
		{
			name: "n=1 with degree 0 runs",
			cfg:  traceConfig{Algo: "lasvegas-mis", N: 1, Deg: 0, Seed: 1},
			want: []string{"G(n=1, avg deg 0.0)"},
		},
		{
			name:    "zero nodes",
			cfg:     traceConfig{Algo: "lasvegas-mis", N: 0, Deg: 0, Seed: 1},
			wantErr: "at least one node",
		},
		{
			name:    "negative degree",
			cfg:     traceConfig{Algo: "lasvegas-mis", N: 16, Deg: -1, Seed: 1},
			wantErr: "cannot be negative",
		},
		{
			name:    "degree above n-1",
			cfg:     traceConfig{Algo: "lasvegas-mis", N: 16, Deg: 20, Seed: 1},
			wantErr: "average degree at most 15",
		},
		{
			name:    "negative max-rounds",
			cfg:     traceConfig{Algo: "lasvegas-mis", N: 16, Deg: 2, Seed: 1, MaxRounds: -3},
			wantErr: "must be >= 0",
		},
		{
			name:    "unknown algorithm",
			cfg:     traceConfig{Algo: "no-such", N: 16, Deg: 2, Seed: 1},
			wantErr: `unknown algorithm "no-such"`,
		},
		{
			name: "full run has a cascade and no never-halted row",
			cfg:  traceConfig{Algo: "lasvegas-mis", N: 256, Deg: 6, Seed: 1},
			want: []string{"alternating cascade of", "iteration | announce round"},
		},
		{
			name: "truncated run counts never-halted nodes explicitly",
			cfg:  traceConfig{Algo: "uniform-mis", N: 256, Deg: 6, Seed: 1, MaxRounds: 3},
			want: []string{"never halted within 3 rounds"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			err := trace(tc.cfg, &out)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("trace failed: %v\n%s", err, out.String())
			}
			for _, want := range tc.want {
				if !strings.Contains(out.String(), want) {
					t.Fatalf("output missing %q:\n%s", want, out.String())
				}
			}
			if tc.cfg.MaxRounds == 0 && strings.Contains(out.String(), "never halted") {
				t.Fatalf("untruncated run reported never-halted nodes:\n%s", out.String())
			}
		})
	}
}

// TestTraceCascadeAccounting checks the table's conservation law: pruned
// counts plus the never-halted row add up to n.
func TestTraceCascadeAccounting(t *testing.T) {
	for _, maxRounds := range []int{0, 2, 5} {
		var out strings.Builder
		cfg := traceConfig{Algo: "lasvegas-mis", N: 128, Deg: 4, Seed: 7, MaxRounds: maxRounds}
		if err := trace(cfg, &out); err != nil {
			t.Fatalf("max-rounds=%d: %v", maxRounds, err)
		}
		total := 0
		for _, line := range strings.Split(out.String(), "\n") {
			fields := strings.Split(line, "|")
			if len(fields) != 5 || strings.Contains(line, "iteration") {
				continue
			}
			col := 2
			if strings.Contains(line, "never halted") {
				col = 3
			}
			var pruned int
			if _, err := fmt.Sscan(strings.TrimSpace(fields[col]), &pruned); err != nil {
				t.Fatalf("bad cascade row %q: %v", line, err)
			}
			total += pruned
		}
		if total != cfg.N {
			t.Fatalf("max-rounds=%d: cascade accounts for %d of %d nodes:\n%s",
				maxRounds, total, cfg.N, out.String())
		}
	}
}
