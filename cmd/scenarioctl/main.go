// Command scenarioctl validates and inspects declarative scenario corpora
// (see internal/scenario and the committed scenarios/ directory) without
// running any simulation.
//
// Usage:
//
//	scenarioctl -validate dir [-jobs]
//	scenarioctl -algos
//	scenarioctl -families
//
// -validate parses every *.json spec in the directory, checks it against the
// family table and the algorithm registry (including cross-file name
// uniqueness), and dry-expands the corpus — building every graph and
// algorithm exactly as a run would, so a spec that would fail mid-run fails
// here instead. All problems are reported, not just the first; any problem
// exits non-zero. CI's scenario gate runs this before executing the corpus.
//
// -algos and -families print the registry and the family table, the two
// name spaces scenario files draw from.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/unilocal/unilocal/internal/cliutil"
	"github.com/unilocal/unilocal/internal/graph"
	"github.com/unilocal/unilocal/internal/scenario"
)

var (
	flagValidate = flag.String("validate", "", "validate all scenario files in this directory")
	flagJobs     = flag.Bool("jobs", false, "with -validate: also print the expanded job list")
	flagAlgos    = flag.Bool("algos", false, "list the algorithm registry")
	flagFamilies = flag.Bool("families", false, "list the graph family table")
)

func main() {
	flag.Parse()
	switch {
	case *flagAlgos:
		for _, e := range scenario.Algorithms() {
			tags := ""
			if e.PerGraph {
				tags += " [baseline]"
			}
			if e.NeedsLambda {
				tags += " [lambda]"
			}
			if e.NeedsBeta {
				tags += " [beta]"
			}
			if e.PacksIDs {
				tags += " [packs-ids]"
			}
			fmt.Printf("%-28s%s — %s\n", e.Name, tags, e.Doc)
		}
	case *flagFamilies:
		fmt.Print(scenario.FamilyTable())
	case *flagValidate != "":
		if !validate(*flagValidate, os.Stdout, os.Stderr) {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// validate reports every problem in the corpus and returns overall success.
func validate(dir string, stdout, stderr io.Writer) bool {
	if err := cliutil.Dir("-validate", dir); err != nil {
		fmt.Fprintln(stderr, "scenarioctl:", err)
		return false
	}
	results, err := scenario.LintDir(dir)
	if err != nil {
		fmt.Fprintln(stderr, "scenarioctl:", err)
		return false
	}
	ok := true
	var specs []*scenario.Spec
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(stderr, "scenarioctl: %v\n", r.Err)
			ok = false
			continue
		}
		specs = append(specs, r.Spec)
		fmt.Fprintf(stdout, "%s: ok (%s) knowledge=%s scheduler=%s\n",
			r.Path, r.Spec.Name, r.Spec.Knowledge, r.Spec.Scheduler)
	}
	if !ok {
		return false
	}
	// Dry expansion: builds every graph, identity perturbation and algorithm
	// through one shared corpus, exactly as a run would.
	corpus := graph.NewCorpus()
	batch, err := scenario.Expand(specs, scenario.ExpandOptions{Corpus: corpus})
	if err != nil {
		fmt.Fprintln(stderr, "scenarioctl:", err)
		return false
	}
	if *flagJobs {
		for i, j := range batch.Jobs {
			fmt.Fprintf(stdout, "job %3d: %s (n=%d)\n", i, j.Label, j.Graph.N())
		}
	}
	hits, misses := corpus.Stats()
	fmt.Fprintf(stdout, "validated %d files, %d scenarios, %d jobs (corpus: %d graphs built, %d reused; algorithms: %d built, %d shared)\n",
		len(results), len(specs), len(batch.Jobs), misses, hits, batch.AlgoBuilds, batch.AlgoShares)
	return true
}
