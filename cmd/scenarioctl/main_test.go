package main

// Smoke tests for the corpus validator: malformed specs must fail with every
// problem reported, good corpora (including the committed one) must pass.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSpecs(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestValidateMalformedCorpus(t *testing.T) {
	tests := []struct {
		name    string
		files   map[string]string
		wantErr []string // substrings expected on stderr
	}{
		{
			name:    "syntax error",
			files:   map[string]string{"bad.json": `{"name": "x",`},
			wantErr: []string{"bad.json"},
		},
		{
			name: "unknown field",
			files: map[string]string{
				"typo.json": `{"name":"typo","graph":{"family":"cycle","n":64},"algorithm":{"name":"luby-mis"},"repeats":3}`,
			},
			wantErr: []string{"typo.json", "repeats"},
		},
		{
			name: "unknown algorithm",
			files: map[string]string{
				"algo.json": `{"name":"algo","graph":{"family":"cycle","n":64},"algorithm":{"name":"nope"}}`,
			},
			wantErr: []string{`unknown algorithm "nope"`},
		},
		{
			name: "duplicate names across files",
			files: map[string]string{
				"a.json": `{"name":"same","graph":{"family":"cycle","n":64},"algorithm":{"name":"luby-mis"}}`,
				"b.json": `{"name":"same","graph":{"family":"cycle","n":64},"algorithm":{"name":"luby-mis"}}`,
			},
			wantErr: []string{`scenario name "same" already used`},
		},
		{
			name: "all problems reported, not just the first",
			files: map[string]string{
				"one.json": `{"name":"one","graph":{"family":"cycle","n":64},"algorithm":{"name":"nope"}}`,
				"two.json": `{"name":"TWO","graph":{"family":"cycle","n":64},"algorithm":{"name":"luby-mis"}}`,
			},
			wantErr: []string{`unknown algorithm "nope"`, "kebab-case"},
		},
		{
			name:    "empty directory",
			files:   map[string]string{},
			wantErr: []string{"no *.json files"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeSpecs(t, tc.files)
			var stdout, stderr strings.Builder
			if validate(dir, &stdout, &stderr) {
				t.Fatalf("validate accepted a malformed corpus\nstdout: %s", stdout.String())
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(stderr.String(), want) {
					t.Errorf("stderr missing %q:\n%s", want, stderr.String())
				}
			}
		})
	}
}

func TestValidateGoodCorpus(t *testing.T) {
	dir := writeSpecs(t, map[string]string{
		"ok.json": `{"name":"ok","graph":{"family":"cycle","n":64},"algorithm":{"name":"luby-mis"},"seeds":[1,2]}`,
	})
	var stdout, stderr strings.Builder
	if !validate(dir, &stdout, &stderr) {
		t.Fatalf("validate rejected a good corpus:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "validated 1 files, 1 scenarios, 2 jobs") {
		t.Fatalf("unexpected summary:\n%s", stdout.String())
	}
}

// TestValidateCommittedCorpus keeps the committed scenarios/ directory
// loadable by the exact code path CI's scenario gate runs.
func TestValidateCommittedCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("expands every committed scenario graph")
	}
	var stdout, stderr strings.Builder
	if !validate(filepath.Join("..", "..", "scenarios"), &stdout, &stderr) {
		t.Fatalf("committed corpus failed validation:\n%s", stderr.String())
	}
}
