# Build/test/bench entry points, including the PGO workflow from ISSUE 10:
# `make pgo` regenerates the committed default.pgo profile from the
# representative localbench sweep and distributes it into every cmd/* main
# package (the Go toolchain auto-applies a default.pgo only when it sits in
# the main package's own directory), and `make verify-pgo` proves the
# committed profile is loadable and actually applied by a plain `go build`
# (the CI pgo-gate job runs it on every commit).

GO ?= go
PGO_ITERS ?= 3

.PHONY: build test race bench pgo verify-pgo

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/bitset/ ./internal/local/ ./internal/sweep/ \
		./internal/serve/ ./internal/fabric/ ./internal/job/

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/bitset/ ./internal/local/

# Regenerate default.pgo: run the full experiment sweep $(PGO_ITERS) times
# under one CPU profile, then copy the profile next to each main package.
# The root default.pgo is the canonical artifact; the cmd/*/default.pgo
# copies are what `go build ./...` picks up per binary.
pgo:
	$(GO) run ./cmd/localbench -pgo default.pgo -pgo-iters $(PGO_ITERS)
	for d in cmd/*/; do cp default.pgo $$d; done

# Assert the committed profile is loadable and applied: a default build of a
# main package must record a `-pgo=<path>/default.pgo` build setting in
# `go version -m`, and a `-pgo=off` build of the same package must not
# record any -pgo setting. A corrupt or missing profile fails the first
# build or the first grep.
verify-pgo:
	@test -f cmd/localbench/default.pgo || { echo "verify-pgo: cmd/localbench/default.pgo missing (run make pgo)"; exit 1; }
	@tmp=$$(mktemp -d) && \
	$(GO) build -o $$tmp/with-pgo ./cmd/localbench && \
	$(GO) build -pgo=off -o $$tmp/no-pgo ./cmd/localbench && \
	$(GO) version -m $$tmp/with-pgo | grep -E 'build[[:space:]]+-pgo=.*default\.pgo' && \
	! $(GO) version -m $$tmp/no-pgo | grep -E 'build[[:space:]]+-pgo=' && \
	rm -rf $$tmp && echo "verify-pgo: profile applied by default build, absent under -pgo=off"
